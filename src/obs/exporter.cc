#include "obs/exporter.h"

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <system_error>
#include <utility>

#include "obs/prof.h"
#include "obs/prom.h"

namespace gametrace::obs {

namespace {

// Consumes "--<flag>=<value>" into `value`; empty values are rejected so a
// typo like "--metrics-out=" fails the parse instead of activating an
// output with nowhere to go.
bool ParseStringFlag(std::string_view arg, std::string_view flag, std::string& value) {
  if (!arg.starts_with(flag)) return false;
  const std::string_view rest = arg.substr(flag.size());
  if (rest.empty()) return false;
  value.assign(rest);
  return true;
}

bool ParsePositiveSeconds(std::string_view text, double& value) {
  const std::string copy(text);
  char* end = nullptr;
  const double parsed = std::strtod(copy.c_str(), &end);
  if (end == nullptr || *end != '\0' || !(parsed > 0.0)) return false;
  value = parsed;
  return true;
}

void EnvDefault(const char* name, std::string& value) {
  if (!value.empty()) return;
  // Env reads happen once, during single-threaded front-end startup.
  if (const char* env = std::getenv(name)) value = env;  // NOLINT(concurrency-mt-unsafe)
}

}  // namespace

bool ExportOptions::TryParseFlag(std::string_view arg) {
  if (ParseStringFlag(arg, "--metrics-out=", metrics_path)) return true;
  if (ParseStringFlag(arg, "--trace-out=", trace_path)) return true;
  if (ParseStringFlag(arg, "--flight-out=", flight_path)) return true;
  if (ParseStringFlag(arg, "--alerts-out=", alerts_path)) return true;
  if (ParseStringFlag(arg, "--prom-out=", prom_path)) return true;
  if (ParseStringFlag(arg, "--flight-dump=", dump_path)) return true;
  if (arg.starts_with("--flight-sample=")) {
    return ParsePositiveSeconds(arg.substr(16), sample_period_seconds);
  }
  return false;
}

void ExportOptions::ApplyEnvDefaults() {
  EnvDefault("GAMETRACE_METRICS_OUT", metrics_path);
  EnvDefault("GAMETRACE_TRACE_OUT", trace_path);
  EnvDefault("GAMETRACE_FLIGHT_OUT", flight_path);
  EnvDefault("GAMETRACE_ALERTS_OUT", alerts_path);
  EnvDefault("GAMETRACE_PROM_OUT", prom_path);
  if (dump_path == ExportOptions{}.dump_path) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-only, single-threaded
    if (const char* env = std::getenv("GAMETRACE_FLIGHT_DUMP")) dump_path = env;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-only, single-threaded
  if (const char* env = std::getenv("GAMETRACE_FLIGHT_SAMPLE")) {
    ParsePositiveSeconds(env, sample_period_seconds);
  }
}

bool OpenOutputFile(const std::string& path, std::ofstream& out) {
  const std::filesystem::path target(path);
  const std::filesystem::path parent = target.parent_path();
  std::error_code ec;
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      std::cerr << "[gametrace] error: cannot write " << path
                << " (creating directory " << parent.string() << ": " << ec.message() << ")\n";
      return false;
    }
  }
  out.open(target);
  if (!out) {
    std::cerr << "[gametrace] error: cannot write " << path << " (open failed)\n";
    return false;
  }
  return true;
}

ExportSession::ExportSession(ExportOptions options) : options_(std::move(options)) {
  if (!options_.any_output()) return;
  recorder_ = FlightRecorder(FlightRecorder::Options{
      .sample_period_seconds = options_.sample_period_seconds,
  });
  watchdog_ = WatchdogEngine(WatchdogEngine::BuiltinRules());
  EnableProfiling(true);
  dump_guard_.emplace(options_.dump_path);
  binding_.emplace(ObsContext{
      .metrics = &metrics_,
      .trace = &trace_,
      .recorder = &recorder_,
      .watchdog = &watchdog_,
      .prom_path = options_.prom_path.empty() ? nullptr : options_.prom_path.c_str(),
      .shard_id = 0,
      .heartbeat = true,
  });
}

namespace {

ExportOptions OptionsFromArgs(int argc, char** argv) {
  ExportOptions options;
  for (int i = 1; i < argc; ++i) options.TryParseFlag(argv[i]);
  options.ApplyEnvDefaults();
  return options;
}

}  // namespace

ExportSession::ExportSession(int argc, char** argv) : ExportSession(OptionsFromArgs(argc, argv)) {}

ExportSession::~ExportSession() { Finish(); }

int ExportSession::Finish() {
  if (!binding_.has_value() || finished_) return 0;
  finished_ = true;
  binding_.reset();
  EnableProfiling(false);

  // Alerts for any snapshots the run sampled but never evaluated (the
  // cursor makes this a no-op when live evaluation kept up), then the
  // export-time folds: profiling and alert counters never enter the
  // deterministic merge, only the written files.
  watchdog_.CatchUp(recorder_);
  DumpProfilingInto(metrics_);
  watchdog_.DumpInto(metrics_);
  watchdog_.DumpInto(trace_);

  // Surface bounded-buffer trace loss. RunFleet already exports the merged
  // total; top up rather than Add so single-run and fleet paths agree.
  const std::uint64_t dropped = trace_.dropped();
  Counter& dropped_counter = metrics_.counter("obs.trace.dropped_events");
  if (dropped > dropped_counter.value()) dropped_counter.Add(dropped - dropped_counter.value());

  int status = 0;
  const auto write_file = [&status](const std::string& path, const std::string& content,
                                    const char* what) {
    if (path.empty()) return;
    std::ofstream out;
    if (!OpenOutputFile(path, out)) {
      status = 1;
      return;
    }
    out << content;
    if (!out.good()) {
      std::cerr << "[gametrace] error: cannot write " << path << " (write failed)\n";
      status = 1;
      return;
    }
    std::cerr << "[gametrace] " << what << " written to " << path << "\n";
  };

  write_file(options_.metrics_path, metrics_.ToJson(), "metrics");
  write_file(options_.trace_path, trace_.ToJson(), "trace");
  write_file(options_.flight_path, recorder_.ToJsonl(), "flight snapshots");
  write_file(options_.alerts_path, watchdog_.ToJsonl(), "alerts");
  // Last, so the text includes the profiling and alert counters.
  write_file(options_.prom_path, ToPrometheusText(metrics_), "prometheus metrics");

  dump_guard_.reset();
  return status;
}

}  // namespace gametrace::obs
