#include "obs/exporter.h"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <system_error>
#include <utility>

#include "obs/prof.h"
#include "obs/prom.h"

namespace gametrace::obs {

namespace {

// Consumes "--<flag>=<value>" into `value`; empty values are rejected so a
// typo like "--metrics-out=" fails the parse instead of activating an
// output with nowhere to go.
bool ParseStringFlag(std::string_view arg, std::string_view flag, std::string& value) {
  if (!arg.starts_with(flag)) return false;
  const std::string_view rest = arg.substr(flag.size());
  if (rest.empty()) return false;
  value.assign(rest);
  return true;
}

bool ParsePositiveSeconds(std::string_view text, double& value) {
  const std::string copy(text);
  char* end = nullptr;
  const double parsed = std::strtod(copy.c_str(), &end);
  if (end == nullptr || *end != '\0' || !(parsed > 0.0)) return false;
  value = parsed;
  return true;
}

void EnvDefault(const char* name, std::string& value) {
  if (!value.empty()) return;
  // Env reads happen once, during single-threaded front-end startup.
  if (const char* env = std::getenv(name)) value = env;  // NOLINT(concurrency-mt-unsafe)
}

bool ParseFiniteDouble(std::string_view text, double& value) {
  const std::string copy(text);
  char* end = nullptr;
  const double parsed = std::strtod(copy.c_str(), &end);
  if (end == nullptr || end == copy.c_str() || *end != '\0' || !std::isfinite(parsed)) {
    return false;
  }
  value = parsed;
  return true;
}

// "<metric>,<quantile>,<limit>" -> a kSketchQuantile rule named
// "slo.quantile.<metric>". Malformed specs are rejected whole.
bool ParseQuantileSlo(std::string_view spec, std::vector<SloRule>& rules) {
  const std::size_t first = spec.find(',');
  if (first == std::string_view::npos) return false;
  const std::size_t second = spec.find(',', first + 1);
  if (second == std::string_view::npos) return false;
  const std::string_view metric = spec.substr(0, first);
  double quantile = 0.0;
  double threshold = 0.0;
  if (metric.empty() ||
      !ParseFiniteDouble(spec.substr(first + 1, second - first - 1), quantile) ||
      !ParseFiniteDouble(spec.substr(second + 1), threshold) || quantile <= 0.0 ||
      quantile >= 1.0) {
    return false;
  }
  rules.push_back(SloRule{
      .name = "slo.quantile." + std::string(metric),
      .metric = std::string(metric),
      .signal = SloRule::Signal::kSketchQuantile,
      .direction = SloRule::Direction::kAbove,
      .threshold = threshold,
      .quantile = quantile,
      .description = "user quantile SLO (--quantile-slo / GAMETRACE_QUANTILE_SLO)",
  });
  return true;
}

// "<metric>,<limit>" -> a kRingHurstMid rule named "slo.hurst.<metric>".
bool ParseHurstSlo(std::string_view spec, std::vector<SloRule>& rules) {
  const std::size_t comma = spec.find(',');
  if (comma == std::string_view::npos) return false;
  const std::string_view metric = spec.substr(0, comma);
  double threshold = 0.0;
  if (metric.empty() || !ParseFiniteDouble(spec.substr(comma + 1), threshold)) return false;
  rules.push_back(SloRule{
      .name = "slo.hurst." + std::string(metric),
      .metric = std::string(metric),
      .signal = SloRule::Signal::kRingHurstMid,
      .direction = SloRule::Direction::kAbove,
      .threshold = threshold,
      .description = "user Hurst SLO (--hurst-slo / GAMETRACE_HURST_SLO)",
  });
  return true;
}

bool HasSignal(const std::vector<SloRule>& rules, SloRule::Signal signal) {
  for (const SloRule& rule : rules) {
    if (rule.signal == signal) return true;
  }
  return false;
}

}  // namespace

bool ExportOptions::TryParseFlag(std::string_view arg) {
  if (ParseStringFlag(arg, "--metrics-out=", metrics_path)) return true;
  if (ParseStringFlag(arg, "--trace-out=", trace_path)) return true;
  if (ParseStringFlag(arg, "--flight-out=", flight_path)) return true;
  if (ParseStringFlag(arg, "--alerts-out=", alerts_path)) return true;
  if (ParseStringFlag(arg, "--prom-out=", prom_path)) return true;
  if (ParseStringFlag(arg, "--sched-metrics-out=", sched_metrics_path)) return true;
  if (ParseStringFlag(arg, "--sched-report-out=", sched_report_path)) return true;
  if (ParseStringFlag(arg, "--sched-trace-out=", sched_trace_path)) return true;
  if (ParseStringFlag(arg, "--flight-dump=", dump_path)) return true;
  if (arg.starts_with("--flight-sample=")) {
    return ParsePositiveSeconds(arg.substr(16), sample_period_seconds);
  }
  if (arg.starts_with("--quantile-slo=")) {
    return ParseQuantileSlo(arg.substr(15), extra_rules);
  }
  if (arg.starts_with("--hurst-slo=")) {
    return ParseHurstSlo(arg.substr(12), extra_rules);
  }
  return false;
}

void ExportOptions::ApplyEnvDefaults() {
  EnvDefault("GAMETRACE_METRICS_OUT", metrics_path);
  EnvDefault("GAMETRACE_TRACE_OUT", trace_path);
  EnvDefault("GAMETRACE_FLIGHT_OUT", flight_path);
  EnvDefault("GAMETRACE_ALERTS_OUT", alerts_path);
  EnvDefault("GAMETRACE_PROM_OUT", prom_path);
  EnvDefault("GAMETRACE_SCHED_METRICS_OUT", sched_metrics_path);
  EnvDefault("GAMETRACE_SCHED_REPORT_OUT", sched_report_path);
  EnvDefault("GAMETRACE_SCHED_TRACE_OUT", sched_trace_path);
  if (dump_path == ExportOptions{}.dump_path) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-only, single-threaded
    if (const char* env = std::getenv("GAMETRACE_FLIGHT_DUMP")) dump_path = env;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-only, single-threaded
  if (const char* env = std::getenv("GAMETRACE_FLIGHT_SAMPLE")) {
    ParsePositiveSeconds(env, sample_period_seconds);
  }
  // Environment SLOs fill in only when no flag already added a rule of the
  // same kind, mirroring the path flags above.
  if (!HasSignal(extra_rules, SloRule::Signal::kSketchQuantile)) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-only, single-threaded
    if (const char* env = std::getenv("GAMETRACE_QUANTILE_SLO")) {
      ParseQuantileSlo(env, extra_rules);
    }
  }
  if (!HasSignal(extra_rules, SloRule::Signal::kRingHurstMid)) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-only, single-threaded
    if (const char* env = std::getenv("GAMETRACE_HURST_SLO")) {
      ParseHurstSlo(env, extra_rules);
    }
  }
}

bool OpenOutputFile(const std::string& path, std::ofstream& out) {
  const std::filesystem::path target(path);
  const std::filesystem::path parent = target.parent_path();
  std::error_code ec;
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      std::cerr << "[gametrace] error: cannot write " << path
                << " (creating directory " << parent.string() << ": " << ec.message() << ")\n";
      return false;
    }
  }
  out.open(target);
  if (!out) {
    std::cerr << "[gametrace] error: cannot write " << path << " (open failed)\n";
    return false;
  }
  return true;
}

ExportSession::ExportSession(ExportOptions options) : options_(std::move(options)) {
  if (!options_.any_output()) return;
  recorder_ = FlightRecorder(FlightRecorder::Options{
      .sample_period_seconds = options_.sample_period_seconds,
  });
  watchdog_ = WatchdogEngine(WatchdogEngine::BuiltinRules());
  for (const SloRule& rule : options_.extra_rules) watchdog_.AddRule(rule);
  EnableProfiling(true);
  dump_guard_.emplace(options_.dump_path);
  binding_.emplace(ObsContext{
      .metrics = &metrics_,
      .trace = &trace_,
      .recorder = &recorder_,
      .watchdog = &watchdog_,
      .prom_path = options_.prom_path.empty() ? nullptr : options_.prom_path.c_str(),
      .shard_id = 0,
      .heartbeat = true,
  });
}

namespace {

ExportOptions OptionsFromArgs(int argc, char** argv) {
  ExportOptions options;
  for (int i = 1; i < argc; ++i) options.TryParseFlag(argv[i]);
  options.ApplyEnvDefaults();
  return options;
}

}  // namespace

ExportSession::ExportSession(int argc, char** argv) : ExportSession(OptionsFromArgs(argc, argv)) {}

ExportSession::~ExportSession() { Finish(); }

void ExportSession::RecordScheduler(const MetricsRegistry& scheduler_metrics,
                                    const SchedReport& report, const TraceLog& sched_trace) {
  if (!binding_.has_value()) return;
  has_scheduler_ = true;
  sched_metrics_ = scheduler_metrics;
  sched_report_ = report;
  sched_trace_ = sched_trace;
}

int ExportSession::Finish() {
  if (!binding_.has_value() || finished_) return 0;
  finished_ = true;
  binding_.reset();
  EnableProfiling(false);

  // Alerts for any snapshots the run sampled but never evaluated (the
  // cursor makes this a no-op when live evaluation kept up), then the
  // export-time folds: profiling and alert counters never enter the
  // deterministic merge, only the written files.
  watchdog_.CatchUp(recorder_);
  DumpProfilingInto(metrics_);
  watchdog_.DumpInto(metrics_);
  watchdog_.DumpInto(trace_);

  // Surface bounded-buffer trace loss. RunFleet already exports the merged
  // total; top up rather than Add so single-run and fleet paths agree.
  const std::uint64_t dropped = trace_.dropped();
  Counter& dropped_counter = metrics_.counter("obs.trace.dropped_events");
  if (dropped > dropped_counter.value()) dropped_counter.Add(dropped - dropped_counter.value());

  int status = 0;
  const auto write_file = [&status](const std::string& path, const std::string& content,
                                    const char* what) {
    if (path.empty()) return;
    std::ofstream out;
    if (!OpenOutputFile(path, out)) {
      status = 1;
      return;
    }
    out << content;
    if (!out.good()) {
      std::cerr << "[gametrace] error: cannot write " << path << " (write failed)\n";
      status = 1;
      return;
    }
    std::cerr << "[gametrace] " << what << " written to " << path << "\n";
  };

  write_file(options_.metrics_path, metrics_.ToJson(), "metrics");
  write_file(options_.trace_path, trace_.ToJson(), "trace");
  write_file(options_.flight_path, recorder_.ToJsonl(), "flight snapshots");
  write_file(options_.alerts_path, watchdog_.ToJsonl(), "alerts");
  // The scheduler diagnostic channel: written even when no fleet ran (an
  // empty registry / report / trace), so a requested path never silently
  // stays absent.
  write_file(options_.sched_metrics_path, sched_metrics_.ToJson(), "scheduler metrics");
  write_file(options_.sched_report_path, sched_report_.ToJson(), "scheduler report");
  write_file(options_.sched_trace_path, sched_trace_.ToJson(), "scheduler timeline");
  // Last, so the text includes the profiling and alert counters. The
  // scheduler registry joins the exposition here (and only here): its
  // fleet.worker.<w>.* names become gametrace_fleet_* families with a
  // worker label, and the deterministic --metrics-out stays untouched.
  std::string prom_text = ToPrometheusText(metrics_);
  if (has_scheduler_) prom_text += ToPrometheusText(sched_metrics_);
  write_file(options_.prom_path, prom_text, "prometheus metrics");

  dump_guard_.reset();
  return status;
}

}  // namespace gametrace::obs
