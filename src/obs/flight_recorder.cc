#include "obs/flight_recorder.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <utility>
#include <vector>

#include "core/check.h"
#include "core/thread_annotations.h"
#include "obs/exporter.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/trace_log.h"

namespace gametrace::obs {

FlightRecorder::FlightRecorder(Options options) : options_(options) {
  GT_CHECK(options.sample_period_seconds > 0.0)
      << "FlightRecorder: sample period must be positive, got "
      << options.sample_period_seconds;
  GT_CHECK(options.max_snapshots > 0) << "FlightRecorder: ring must hold at least one snapshot";
}

void FlightRecorder::Sample(double t_seconds, MetricsRegistry metrics) {
  snapshots_.push_back(Snapshot{t_seconds, std::move(metrics)});
  ++total_samples_;
  while (snapshots_.size() > options_.max_snapshots) snapshots_.pop_front();
}

void FlightRecorder::Merge(const FlightRecorder& other) {
  if (other.snapshots_.empty()) {
    total_samples_ = std::max(total_samples_, other.total_samples_);
    return;
  }
  if (snapshots_.empty()) {
    snapshots_ = other.snapshots_;
    total_samples_ = std::max(total_samples_, other.total_samples_);
    return;
  }
  GT_CHECK_EQ(snapshots_.size(), other.snapshots_.size())
      << "FlightRecorder::Merge: shards sampled different grids";
  GT_CHECK_EQ(total_samples_, other.total_samples_)
      << "FlightRecorder::Merge: shards evicted different amounts";
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    GT_CHECK(snapshots_[i].t_seconds == other.snapshots_[i].t_seconds)
        << "FlightRecorder::Merge: snapshot " << i << " timestamps differ ("
        << snapshots_[i].t_seconds << " vs " << other.snapshots_[i].t_seconds << ")";
    snapshots_[i].metrics.Merge(other.snapshots_[i].metrics);
  }
}

void FlightRecorder::AppendSnapshotJson(std::string& out, std::size_t i) const {
  const Snapshot& snapshot = snapshots_.at(i);
  out += "{\"t\": ";
  AppendJsonNumber(out, snapshot.t_seconds);
  out += ", \"seq\": " + std::to_string(sequence_of(i));
  out += ", \"metrics\": ";
  snapshot.metrics.AppendCompactJson(out);
  out += "}";
}

std::string FlightRecorder::ToJsonl() const {
  std::string out;
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    AppendSnapshotJson(out, i);
    out += '\n';
  }
  return out;
}

void FlightRecorder::WriteJsonl(std::ostream& out) const { out << ToJsonl(); }

namespace {

void AppendTraceEventJson(std::string& out, const TraceLog::Event& event) {
  out += "{\"name\": ";
  AppendJsonString(out, event.name);
  out += ", \"cat\": ";
  AppendJsonString(out, event.cat);
  out += ", \"ph\": ";
  AppendJsonString(out, std::string_view(&event.ph, 1));
  out += ", \"ts_us\": ";
  AppendJsonNumber(out, event.ts_us);
  if (event.ph == 'X') {
    out += ", \"dur_us\": ";
    AppendJsonNumber(out, event.dur_us);
  }
  if (event.ph == 'C') {
    out += ", \"value\": ";
    AppendJsonNumber(out, event.value);
  }
  out += ", \"pid\": " + std::to_string(event.pid);
  out += "}";
}

}  // namespace

void WriteFlightDump(std::ostream& out, std::string_view reason, const FlightRecorder* recorder,
                     const TraceLog* trace, const ContractFailure* failure,
                     const FlightDumpOptions& options) {
  std::string doc;
  doc += "{\n  \"reason\": ";
  AppendJsonString(doc, reason);
  if (failure != nullptr) {
    doc += ",\n  \"failure\": {\"file\": ";
    AppendJsonString(doc, failure->file);
    doc += ", \"line\": " + std::to_string(failure->line);
    doc += ", \"condition\": ";
    AppendJsonString(doc, failure->condition);
    doc += ", \"message\": ";
    AppendJsonString(doc, failure->message);
    doc += "}";
  }

  const std::uint64_t total = recorder != nullptr ? recorder->total_samples() : 0;
  const std::uint64_t evicted = recorder != nullptr ? recorder->evicted() : 0;
  doc += ",\n  \"total_samples\": " + std::to_string(total);
  doc += ",\n  \"evicted_snapshots\": " + std::to_string(evicted);
  doc += ",\n  \"snapshots\": [";
  if (recorder != nullptr && !recorder->empty()) {
    const std::size_t held = recorder->size();
    const std::size_t first = held > options.last_snapshots ? held - options.last_snapshots : 0;
    for (std::size_t i = first; i < held; ++i) {
      doc += i == first ? "\n    " : ",\n    ";
      recorder->AppendSnapshotJson(doc, i);
    }
    doc += "\n  ";
  }
  doc += "]";

  doc += ",\n  \"trace_dropped_events\": " +
         std::to_string(trace != nullptr ? trace->dropped() : 0);
  doc += ",\n  \"trace_tail\": [";
  if (trace != nullptr && !trace->events().empty()) {
    // Same stable ts order as TraceLog::WriteJson, then keep the tail: the
    // black box wants the *latest* sim-time activity, not push order.
    std::vector<const TraceLog::Event*> sorted;
    sorted.reserve(trace->events().size());
    for (const TraceLog::Event& event : trace->events()) sorted.push_back(&event);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceLog::Event* a, const TraceLog::Event* b) {
                       return a->ts_us < b->ts_us;
                     });
    const std::size_t first =
        sorted.size() > options.last_trace_events ? sorted.size() - options.last_trace_events : 0;
    for (std::size_t i = first; i < sorted.size(); ++i) {
      doc += i == first ? "\n    " : ",\n    ";
      AppendTraceEventJson(doc, *sorted[i]);
    }
    doc += "\n  ";
  }
  doc += "]";

  doc += ",\n  \"profiling\": [";
  const std::vector<ProfSample> profiling = ProfilingSnapshot();
  for (std::size_t i = 0; i < profiling.size(); ++i) {
    doc += i == 0 ? "\n    " : ",\n    ";
    doc += "{\"name\": ";
    AppendJsonString(doc, profiling[i].name);
    doc += ", \"calls\": " + std::to_string(profiling[i].calls);
    doc += ", \"ns\": " + std::to_string(profiling[i].nanos);
    doc += "}";
  }
  doc += profiling.empty() ? "]\n}\n" : "\n  ]\n}\n";
  out << doc;
}

namespace {

// ScopedFlightDump state. The contract handler is a plain function
// pointer, so the guard parks its path here; one guard at a time. No
// atomics on purpose: every access (install, dump, restore) funnels
// through g_dump_mutex, and the only lock-free state is the thread_local
// re-entrancy breaker, which no other thread can observe by construction.
core::Mutex g_dump_mutex;
bool g_dump_active GT_GUARDED_BY(g_dump_mutex) = false;
std::string g_dump_path GT_GUARDED_BY(g_dump_mutex);
FlightDumpOptions g_dump_options GT_GUARDED_BY(g_dump_mutex);
ContractHandler g_previous_handler GT_GUARDED_BY(g_dump_mutex) = nullptr;
thread_local bool t_writing_flight_dump = false;  // re-entrancy breaker

bool WriteDumpForCurrentContext(const std::string& path, std::string_view reason,
                                const ContractFailure* failure,
                                const FlightDumpOptions& options) {
  const ObsContext& context = Current();
  std::ofstream out;
  if (!OpenOutputFile(path, out)) return false;
  WriteFlightDump(out, reason, context.recorder, context.trace, failure, options);
  return out.good();
}

[[noreturn]] void FlightDumpContractHandler(const ContractFailure& failure) {
  ContractHandler previous = nullptr;
  {
    const core::MutexLock lock(g_dump_mutex);
    previous = g_previous_handler;
    // Best-effort: a failure while dumping (or a dump that itself trips a
    // check) must not recurse into another dump.
    if (g_dump_active && !t_writing_flight_dump) {
      t_writing_flight_dump = true;
      WriteDumpForCurrentContext(g_dump_path, "contract_violation", &failure, g_dump_options);
      t_writing_flight_dump = false;
    }
  }
  // Chain outside the lock: the previous handler aborts or throws.
  if (previous != nullptr) previous(failure);
  AbortContractHandler(failure);
}

}  // namespace

ScopedFlightDump::ScopedFlightDump(std::string path, FlightDumpOptions options) {
  bool already_active = false;
  {
    const core::MutexLock lock(g_dump_mutex);
    already_active = g_dump_active;
    if (!already_active) {
      g_dump_active = true;
      g_dump_path = std::move(path);
      g_dump_options = options;
      g_previous_handler = SetContractHandler(&FlightDumpContractHandler);
    }
  }
  // Checked outside the lock: the failure handler takes g_dump_mutex.
  GT_CHECK(!already_active) << "ScopedFlightDump: a flight-dump guard is already active";
}

ScopedFlightDump::~ScopedFlightDump() {
  const core::MutexLock lock(g_dump_mutex);
  if (!g_dump_active) return;
  SetContractHandler(g_previous_handler);
  g_previous_handler = nullptr;
  g_dump_active = false;
  g_dump_path.clear();
}

bool DumpFlightNow(std::string_view reason) {
  std::string path;
  FlightDumpOptions options;
  {
    const core::MutexLock lock(g_dump_mutex);
    if (!g_dump_active) return false;
    path = g_dump_path;
    options = g_dump_options;
  }
  return WriteDumpForCurrentContext(path, reason, nullptr, options);
}

}  // namespace gametrace::obs
