// Hot-path profiling hooks: GT_PROF_SCOPE and friends.
//
//   void LoadAggregator::OnBatch(...) {
//     GT_PROF_SCOPE("trace.load_agg.on_batch");
//     ...
//   }
//
// Each macro site declares a constant-initialized ProfSite (no static
// guard, no registration cost until profiling is actually enabled) and an
// RAII ProfScope that measures wall-clock nanoseconds across the scope.
//
// Cost model:
//  - Compiled out entirely when GAMETRACE_ENABLE_OBS is 0 (the CMake
//    option GAMETRACE_OBS=OFF; per-TU overridable exactly like
//    GAMETRACE_ENABLE_DCHECKS).
//  - Compiled in but idle (the default build): one relaxed atomic-bool
//    load and a predictable branch per scope - budgeted at <2% on the
//    batched hot path and measured by perf_micro's obs sweep
//    (BENCH_hotpath.json, "obs" section).
//  - Enabled (EnableProfiling(true)): two steady_clock reads plus relaxed
//    fetch_adds on the site's counters. Sites are process-global and
//    thread-safe; timings are wall-clock and therefore *never* part of
//    the deterministic MetricsRegistry merge contract - DumpProfilingInto
//    copies them into a registry only when a front-end asks for a
//    snapshot.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

// Per-TU switch, defaulting to on; the GAMETRACE_OBS=OFF CMake option
// defines it to 0 for the whole build. Tests force it per TU to pin the
// no-op behaviour (mirroring the GT_DCHECK elision tests).
#ifndef GAMETRACE_ENABLE_OBS
#define GAMETRACE_ENABLE_OBS 1
#endif

namespace gametrace::obs {

// Global profiling switch. Relaxed loads on the hot path; flipping it is
// not a synchronization point, so enable it before the measured region.
inline std::atomic<bool> g_profiling_enabled{false};

[[nodiscard]] inline bool ProfilingEnabled() noexcept {
  return g_profiling_enabled.load(std::memory_order_relaxed);
}
void EnableProfiling(bool enabled) noexcept;

// One per GT_PROF_SCOPE site; function-local static, constant-initialized
// (constexpr ctor, trivial dtor) so the site costs no init guard. Sites
// self-register into a global intrusive list the first time a scope fires
// with profiling enabled.
struct ProfSite {
  constexpr explicit ProfSite(const char* site_name) noexcept : name(site_name) {}

  const char* name;
  // relaxed everywhere: calls/nanos are independent monotonic tallies with
  // no cross-site invariant; readers (ProfilingSnapshot) tolerate tearing
  // *between* sites and the registration mutex orders list traversal.
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> nanos{0};
  // false -> true exactly once, release-published by RegisterProfSite
  // after the `next` link is written; the relaxed fast-path load in
  // ~ProfScope may observe a stale false, which only costs a redundant
  // (mutex-serialized, idempotent) registration attempt.
  std::atomic<bool> registered{false};
  ProfSite* next = nullptr;  // written once under the registration lock
};

// Called by ProfScope on first active use of a site; idempotent.
void RegisterProfSite(ProfSite& site);

class ProfScope {
 public:
  explicit ProfScope(ProfSite& site) noexcept
      : site_(ProfilingEnabled() ? &site : nullptr) {
    if (site_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

  ~ProfScope() {
    if (site_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    site_->calls.fetch_add(1, std::memory_order_relaxed);
    site_->nanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()),
        std::memory_order_relaxed);
    // relaxed pre-check: a stale false just re-enters RegisterProfSite,
    // which re-checks under its mutex (see the ProfSite field comments).
    if (!site_->registered.load(std::memory_order_relaxed)) RegisterProfSite(*site_);
  }

 private:
  ProfSite* site_;
  std::chrono::steady_clock::time_point start_;
};

struct ProfSample {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t nanos = 0;
};

// Snapshot of every site that has ever fired, sorted by name.
[[nodiscard]] std::vector<ProfSample> ProfilingSnapshot();

// Zeroes all site counters (sites stay registered).
void ResetProfiling() noexcept;

class MetricsRegistry;  // fwd (defined in obs/metrics.h)

// Copies the current snapshot into `registry` as counters
// "prof.<site>.calls" / "prof.<site>.ns". Wall-clock timings are
// non-deterministic by nature - front-ends call this right before writing
// --metrics-out, never inside the shard-merge path.
void DumpProfilingInto(MetricsRegistry& registry);

}  // namespace gametrace::obs

#define GT_OBS_CONCAT_INNER(a, b) a##b
#define GT_OBS_CONCAT(a, b) GT_OBS_CONCAT_INNER(a, b)

#if GAMETRACE_ENABLE_OBS
// Two declarations on purpose: the guard must live in the enclosing scope.
#define GT_PROF_SCOPE(name)                                                      \
  static constinit ::gametrace::obs::ProfSite GT_OBS_CONCAT(gt_prof_site_,       \
                                                            __LINE__){name};     \
  const ::gametrace::obs::ProfScope GT_OBS_CONCAT(gt_prof_scope_, __LINE__) {    \
    GT_OBS_CONCAT(gt_prof_site_, __LINE__)                                       \
  }
#else
#define GT_PROF_SCOPE(name) static_cast<void>(0)
#endif
