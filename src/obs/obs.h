// Ambient observability context.
//
// Front-ends (gtrace_tool, benches) and the fleet runner decide *where*
// metrics and trace events go; deep components (CsServer, NatDevice,
// DeviceStats) just ask "what is the current context?" at construction.
// The binding is thread-local so that fleet shards - one worker thread per
// shard slot at any moment - each observe their own registry and trace
// log, and the per-shard results reduce deterministically afterwards.
//
//   obs::MetricsRegistry metrics;
//   obs::TraceLog trace(/*pid=*/shard_id);
//   obs::ScopedObsBinding bind({.metrics = &metrics, .trace = &trace,
//                               .shard_id = shard_id, .heartbeat = false});
//   ... build simulator + server; they capture the instruments ...
//
// A default-constructed context (all null) is always valid: components
// fall back to registering into nothing, which costs a null check at
// construction and nothing per event.
#pragma once

namespace gametrace::obs {

class MetricsRegistry;
class TraceLog;
class FlightRecorder;
class WatchdogEngine;

struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  TraceLog* trace = nullptr;
  // Live telemetry (see obs/flight_recorder.h, obs/watchdog.h): when a
  // recorder is bound, runs sample `metrics` into it on a sim-time period;
  // when a watchdog is also bound, SLO rules are evaluated against each new
  // snapshot as it lands. Fleet shards get their own recorder and no
  // watchdog - alerts are evaluated once, on the merged stream.
  FlightRecorder* recorder = nullptr;
  WatchdogEngine* watchdog = nullptr;
  // Destination for the heartbeat's periodic Prometheus text flush (null =
  // no flush). Borrowed; the binder keeps the string alive.
  const char* prom_path = nullptr;
  int shard_id = 0;
  // Whether long runs started under this context may print wall-clock
  // heartbeats to stderr. The fleet runner turns this off for shards > 0
  // so an 8-way run does not print eight interleaved heartbeats.
  bool heartbeat = true;
};

// The calling thread's current context; all-null outside any binding.
[[nodiscard]] const ObsContext& Current() noexcept;

// Installs `context` as the calling thread's context for the guard's
// lifetime, restoring the previous one on destruction. Nests.
class ScopedObsBinding {
 public:
  explicit ScopedObsBinding(ObsContext context) noexcept;
  ~ScopedObsBinding();

  ScopedObsBinding(const ScopedObsBinding&) = delete;
  ScopedObsBinding& operator=(const ScopedObsBinding&) = delete;

 private:
  ObsContext previous_;
};

}  // namespace gametrace::obs
