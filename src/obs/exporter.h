// ExportSession: one object owning a front-end's whole observability
// surface - metrics registry, trace log, flight recorder, watchdog, the
// black-box dump guard and the ambient binding - plus the flag/env parsing
// every binary shares.
//
//   obs::ExportOptions options;
//   for (each arg) if (options.TryParseFlag(arg)) continue;  // consumed
//   options.ApplyEnvDefaults();
//   obs::ExportSession session(std::move(options));
//   ... run the workload ...
//   return session.Finish();  // writes every requested file
//
// Flags / environment variables (flag wins):
//   --metrics-out=<json>    GAMETRACE_METRICS_OUT   metrics + profiling
//   --trace-out=<json>      GAMETRACE_TRACE_OUT     Chrome trace_event
//   --flight-out=<jsonl>    GAMETRACE_FLIGHT_OUT    snapshot stream
//   --alerts-out=<jsonl>    GAMETRACE_ALERTS_OUT    watchdog alerts
//   --prom-out=<txt>        GAMETRACE_PROM_OUT      Prometheus text
//   --flight-sample=<s>     GAMETRACE_FLIGHT_SAMPLE sampling period
//   --flight-dump=<json>    GAMETRACE_FLIGHT_DUMP   black-box path
//   --sched-metrics-out=<json>
//                           GAMETRACE_SCHED_METRICS_OUT
//                           fleet scheduler metrics (diagnostic channel)
//   --sched-report-out=<json>
//                           GAMETRACE_SCHED_REPORT_OUT
//                           fleet critical-path report
//   --sched-trace-out=<json>
//                           GAMETRACE_SCHED_TRACE_OUT
//                           fleet worker timeline (Chrome trace_event)
//   --quantile-slo=<metric>,<q>,<limit>
//                           GAMETRACE_QUANTILE_SLO  extra watchdog rule:
//                           alert when quantile q of sketch <metric>
//                           exceeds <limit> (e.g. client.bandwidth.kbps,
//                           0.99,56)
//   --hurst-slo=<metric>,<limit>
//                           GAMETRACE_HURST_SLO     extra watchdog rule:
//                           alert when the mid-scale Hurst of ring
//                           <metric> exceeds <limit>
//
// A session with no output requested binds nothing and costs nothing -
// benches without flags run exactly as before. An active session always
// arms the flight recorder and the black-box guard, so any GT_CHECK
// violation mid-run leaves flight_dump.json even if only --metrics-out
// was asked for.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/sched_report.h"
#include "obs/trace_log.h"
#include "obs/watchdog.h"

namespace gametrace::obs {

struct ExportOptions {
  std::string metrics_path;
  std::string trace_path;
  std::string flight_path;
  std::string alerts_path;
  std::string prom_path;
  // Scheduler diagnostic channel (FleetResult::scheduler_metrics /
  // sched_report / sched_trace, handed over via RecordScheduler). Written
  // as separate files: the channel is worker-count-dependent, so it never
  // mixes into the byte-identical --metrics-out / --trace-out surfaces.
  std::string sched_metrics_path;
  std::string sched_report_path;
  std::string sched_trace_path;
  // Where a GT_CHECK violation or DumpFlightNow writes the black box while
  // the session is active.
  std::string dump_path = "flight_dump.json";
  double sample_period_seconds = 60.0;
  // Extra watchdog rules parsed from --quantile-slo= / --hurst-slo= (or
  // their environment fallbacks); appended after the builtin rule set.
  std::vector<SloRule> extra_rules;

  // Consumes one "--<name>=<value>" observability flag; returns false (and
  // leaves the options untouched) for anything else, so front-ends can
  // forward unrecognized arguments to their own parsing.
  bool TryParseFlag(std::string_view arg);

  // Fills every field still at its default from the matching environment
  // variable. Call after the flag loop so flags win.
  void ApplyEnvDefaults();

  // True when any output file was requested (the dump path alone does not
  // activate a session - it only matters once one is).
  [[nodiscard]] bool any_output() const noexcept {
    return !metrics_path.empty() || !trace_path.empty() || !flight_path.empty() ||
           !alerts_path.empty() || !prom_path.empty() || !sched_metrics_path.empty() ||
           !sched_report_path.empty() || !sched_trace_path.empty();
  }
};

// Opens `path` for writing, creating missing parent directories. On
// failure prints "[gametrace] error: cannot write <path> (<why>)" to
// stderr and returns false - requested output must never vanish silently.
bool OpenOutputFile(const std::string& path, std::ofstream& out);

class ExportSession {
 public:
  explicit ExportSession(ExportOptions options);

  // Convenience: parse observability flags out of argv (non-destructively;
  // unrecognized arguments are ignored) and apply environment defaults.
  ExportSession(int argc, char** argv);

  ExportSession(const ExportSession&) = delete;
  ExportSession& operator=(const ExportSession&) = delete;

  // Finish() if the front-end did not call it; write errors only reach the
  // exit code through an explicit Finish().
  ~ExportSession();

  // Unbinds, evaluates any un-watched snapshots, folds in the profiling
  // and alert counters plus the trace-drop total, and writes every
  // requested file. Idempotent; returns 0 on success, 1 if any file could
  // not be written.
  int Finish();

  // Hands a fleet run's diagnostic channel to the session: the scheduler
  // metrics, critical-path report and worker timeline are written at
  // Finish() to their requested paths, and the scheduler metrics join the
  // Prometheus text as gametrace_fleet_* families with a worker label.
  // Copies are taken, so the FleetResult may be destroyed afterwards; a
  // later call replaces the earlier state (last fleet run wins). No-op on
  // an inactive session.
  void RecordScheduler(const MetricsRegistry& scheduler_metrics, const SchedReport& report,
                       const TraceLog& sched_trace);

  [[nodiscard]] bool active() const noexcept { return binding_.has_value(); }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] TraceLog& trace() noexcept { return trace_; }
  [[nodiscard]] FlightRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] WatchdogEngine& watchdog() noexcept { return watchdog_; }
  [[nodiscard]] bool has_scheduler() const noexcept { return has_scheduler_; }

 private:
  ExportOptions options_;
  bool finished_ = false;
  MetricsRegistry metrics_;
  TraceLog trace_;
  FlightRecorder recorder_;
  WatchdogEngine watchdog_;
  bool has_scheduler_ = false;
  MetricsRegistry sched_metrics_;
  SchedReport sched_report_;
  TraceLog sched_trace_;
  std::optional<ScopedFlightDump> dump_guard_;
  std::optional<ScopedObsBinding> binding_;
};

}  // namespace gametrace::obs
