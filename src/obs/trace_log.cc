#include "obs/trace_log.h"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <utility>

#include "obs/metrics.h"

namespace gametrace::obs {

TraceLog::TraceLog(int pid, std::size_t max_events) : pid_(pid), max_events_(max_events) {
  // A paper-scale week is 12.5 M ticks; tick spans are opt-in.
  category_enabled_.emplace("tick", false);
}

void TraceLog::Push(Event event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceLog::Complete(const char* name, const char* cat, double t0_seconds,
                        double t1_seconds) {
  Complete(std::string(name), cat, t0_seconds, t1_seconds);
}

void TraceLog::Complete(std::string name, const char* cat, double t0_seconds,
                        double t1_seconds) {
  if (!CategoryEnabled(cat)) return;
  Push(Event{.name = std::move(name),
             .cat = cat,
             .ph = 'X',
             .ts_us = t0_seconds * 1e6,
             .dur_us = (t1_seconds - t0_seconds) * 1e6,
             .pid = pid_,
             .value = 0.0});
}

void TraceLog::Instant(const char* name, const char* cat, double t_seconds) {
  Instant(std::string(name), cat, t_seconds);
}

void TraceLog::Instant(std::string name, const char* cat, double t_seconds) {
  if (!CategoryEnabled(cat)) return;
  Push(Event{.name = std::move(name),
             .cat = cat,
             .ph = 'i',
             .ts_us = t_seconds * 1e6,
             .dur_us = 0.0,
             .pid = pid_,
             .value = 0.0});
}

void TraceLog::CounterSample(const char* name, const char* cat, double t_seconds,
                             double value) {
  if (!CategoryEnabled(cat)) return;
  Push(Event{.name = std::string(name),
             .cat = cat,
             .ph = 'C',
             .ts_us = t_seconds * 1e6,
             .dur_us = 0.0,
             .pid = pid_,
             .value = value});
}

bool TraceLog::CategoryEnabled(std::string_view cat) const noexcept {
  const auto it = category_enabled_.find(cat);
  return it == category_enabled_.end() ? true : it->second;
}

void TraceLog::SetCategoryEnabled(std::string_view cat, bool enabled) {
  const auto it = category_enabled_.find(cat);
  if (it == category_enabled_.end()) {
    category_enabled_.emplace(std::string(cat), enabled);
  } else {
    it->second = enabled;
  }
}

void TraceLog::SetClock(std::function<double()> now_seconds) {
  clock_ = std::move(now_seconds);
}

void TraceLog::Merge(TraceLog&& other) {
  dropped_ += other.dropped_;
  for (Event& event : other.events_) {
    Push(std::move(event));
  }
  other.events_.clear();
  other.dropped_ = 0;
}

std::string TraceLog::ToJson() const {
  // Stable ts order: Perfetto accepts any order, but deterministic output
  // keeps shard-merged exports reproducible and testable.
  std::vector<std::size_t> order(events_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return events_[a].ts_us < events_[b].ts_us;
  });

  std::string out;
  out += "{\"traceEvents\": [";
  bool first = true;
  for (const std::size_t i : order) {
    const Event& e = events_[i];
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": ";
    AppendJsonString(out, e.name);
    out += ", \"cat\": ";
    AppendJsonString(out, e.cat);
    out += ", \"ph\": ";
    const char ph[2] = {e.ph, '\0'};
    AppendJsonString(out, ph);
    out += ", \"ts\": ";
    AppendJsonNumber(out, e.ts_us);
    if (e.ph == 'X') {
      out += ", \"dur\": ";
      AppendJsonNumber(out, e.dur_us);
    }
    if (e.ph == 'i') {
      out += ", \"s\": \"g\"";  // global-scope instant: renders across tracks
    }
    if (e.ph == 'C') {
      out += ", \"args\": {\"value\": ";
      AppendJsonNumber(out, e.value);
      out += "}";
    }
    out += ", \"pid\": " + std::to_string(e.pid);
    out += ", \"tid\": 0}";
  }
  out += first ? "],\n" : "\n],\n";
  out += "\"displayTimeUnit\": \"ms\",\n";
  out += "\"otherData\": {\"clock\": \"simulation seconds as microseconds\", "
         "\"dropped_events\": " +
         std::to_string(dropped_) + "}\n}\n";
  return out;
}

void TraceLog::WriteJson(std::ostream& out) const { out << ToJson(); }

}  // namespace gametrace::obs
