#include "obs/metrics.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "core/check.h"

namespace gametrace::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Gauge::MergeMode mode) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    GT_CHECK(it->second.merge_ == mode)
        << "MetricsRegistry::gauge: \"" << std::string(name)
        << "\" re-registered with a different merge mode";
    return it->second;
  }
  Gauge gauge;
  gauge.merge_ = mode;
  return gauges_.emplace(std::string(name), gauge).first->second;
}

stats::Histogram& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                             std::size_t bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    GT_CHECK(it->second.lo() == lo && it->second.hi() == hi &&
             it->second.bin_count() == bins)
        << "MetricsRegistry::histogram: \"" << std::string(name)
        << "\" re-registered with a different geometry";
    return it->second;
  }
  return histograms_.emplace(std::string(name), stats::Histogram(lo, hi, bins))
      .first->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(std::string_view name) const noexcept {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const stats::Histogram* MetricsRegistry::find_histogram(std::string_view name) const noexcept {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, other_counter] : other.counters_) {
    counter(name).Add(other_counter.value());
  }
  for (const auto& [name, other_gauge] : other.gauges_) {
    Gauge& mine = gauge(name, other_gauge.merge_mode());
    switch (other_gauge.merge_mode()) {
      case Gauge::MergeMode::kSum:
        mine.Add(other_gauge.value());
        break;
      case Gauge::MergeMode::kMax:
        mine.SetMax(other_gauge.value());
        break;
    }
  }
  for (const auto& [name, other_hist] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, other_hist);
    } else {
      it->second.Merge(other_hist);
    }
  }
}

void AppendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; serialize as null so the document stays valid.
    out += "null";
    return;
  }
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

void AppendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escaped[8];
          std::snprintf(escaped, sizeof(escaped), "\\u%04x", c);
          out += escaped;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void AppendHistogramJson(std::string& out, const stats::Histogram& hist) {
  out += "{\"lo\": ";
  AppendJsonNumber(out, hist.lo());
  out += ", \"hi\": ";
  AppendJsonNumber(out, hist.hi());
  out += ", \"underflow\": " + std::to_string(hist.underflow());
  out += ", \"overflow\": " + std::to_string(hist.overflow());
  out += ", \"total\": " + std::to_string(hist.total());
  out += ", \"bins\": [";
  for (std::size_t i = 0; i < hist.bin_count(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(hist.count(i));
  }
  out += "]}";
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::string out;
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(counter.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": {\"value\": ";
    AppendJsonNumber(out, gauge.value());
    out += ", \"merge\": ";
    out += gauge.merge_mode() == Gauge::MergeMode::kSum ? "\"sum\"" : "\"max\"";
    out += "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": ";
    AppendHistogramJson(out, hist);
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::WriteJson(std::ostream& out) const { out << ToJson(); }

void MetricsRegistry::ForEachCounter(
    const std::function<void(std::string_view, const Counter&)>& fn) const {
  for (const auto& [name, counter] : counters_) fn(name, counter);
}

void MetricsRegistry::ForEachGauge(
    const std::function<void(std::string_view, const Gauge&)>& fn) const {
  for (const auto& [name, gauge] : gauges_) fn(name, gauge);
}

void MetricsRegistry::ForEachHistogram(
    const std::function<void(std::string_view, const stats::Histogram&)>& fn) const {
  for (const auto& [name, hist] : histograms_) fn(name, hist);
}

void MetricsRegistry::AppendCompactJson(std::string& out) const {
  out += "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(counter.value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": {\"value\": ";
    AppendJsonNumber(out, gauge.value());
    out += ", \"merge\": ";
    out += gauge.merge_mode() == Gauge::MergeMode::kSum ? "\"sum\"" : "\"max\"";
    out += "}";
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": ";
    AppendHistogramJson(out, hist);
  }
  out += "}}";
}

}  // namespace gametrace::obs
