#include "obs/metrics.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "core/check.h"

namespace gametrace::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Gauge::MergeMode mode) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    GT_CHECK(it->second.merge_ == mode)
        << "MetricsRegistry::gauge: \"" << std::string(name)
        << "\" re-registered with a different merge mode";
    return it->second;
  }
  Gauge gauge;
  gauge.merge_ = mode;
  return gauges_.emplace(std::string(name), gauge).first->second;
}

stats::Histogram& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                             std::size_t bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    GT_CHECK(it->second.lo() == lo && it->second.hi() == hi &&
             it->second.bin_count() == bins)
        << "MetricsRegistry::histogram: \"" << std::string(name)
        << "\" re-registered with a different geometry";
    return it->second;
  }
  return histograms_.emplace(std::string(name), stats::Histogram(lo, hi, bins))
      .first->second;
}

stats::QuantileSketch& MetricsRegistry::sketch(std::string_view name, double alpha,
                                               std::size_t max_buckets) {
  const auto it = sketches_.find(name);
  if (it != sketches_.end()) {
    GT_CHECK(it->second.alpha() == alpha && it->second.max_buckets() == max_buckets)
        << "MetricsRegistry::sketch: \"" << std::string(name)
        << "\" re-registered with a different geometry";
    return it->second;
  }
  return sketches_.emplace(std::string(name), stats::QuantileSketch(alpha, max_buckets))
      .first->second;
}

stats::TieredRing& MetricsRegistry::ring(std::string_view name,
                                         stats::TieredRing::Options options) {
  const auto it = rings_.find(name);
  if (it != rings_.end()) {
    GT_CHECK(it->second.SameShape(stats::TieredRing(std::move(options))))
        << "MetricsRegistry::ring: \"" << std::string(name)
        << "\" re-registered with a different schedule";
    return it->second;
  }
  return rings_.emplace(std::string(name), stats::TieredRing(std::move(options)))
      .first->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(std::string_view name) const noexcept {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const stats::Histogram* MetricsRegistry::find_histogram(std::string_view name) const noexcept {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const stats::QuantileSketch* MetricsRegistry::find_sketch(std::string_view name) const noexcept {
  const auto it = sketches_.find(name);
  return it == sketches_.end() ? nullptr : &it->second;
}

const stats::TieredRing* MetricsRegistry::find_ring(std::string_view name) const noexcept {
  const auto it = rings_.find(name);
  return it == rings_.end() ? nullptr : &it->second;
}

void MetricsRegistry::AdvanceRingsTo(double t) {
  for (auto& [name, rg] : rings_) rg.AdvanceTo(t);
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, other_counter] : other.counters_) {
    counter(name).Add(other_counter.value());
  }
  for (const auto& [name, other_gauge] : other.gauges_) {
    Gauge& mine = gauge(name, other_gauge.merge_mode());
    switch (other_gauge.merge_mode()) {
      case Gauge::MergeMode::kSum:
        mine.Add(other_gauge.value());
        break;
      case Gauge::MergeMode::kMax:
        mine.SetMax(other_gauge.value());
        break;
    }
  }
  for (const auto& [name, other_hist] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, other_hist);
    } else {
      it->second.Merge(other_hist);
    }
  }
  for (const auto& [name, other_sketch] : other.sketches_) {
    const auto it = sketches_.find(name);
    if (it == sketches_.end()) {
      sketches_.emplace(name, other_sketch);
    } else {
      it->second.Merge(other_sketch);
    }
  }
  for (const auto& [name, other_ring] : other.rings_) {
    const auto it = rings_.find(name);
    if (it == rings_.end()) {
      rings_.emplace(name, other_ring);
    } else {
      it->second.Merge(other_ring);
    }
  }
}

void AppendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; serialize as null so the document stays valid.
    out += "null";
    return;
  }
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

void AppendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escaped[8];
          std::snprintf(escaped, sizeof(escaped), "\\u%04x", c);
          out += escaped;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void AppendHistogramJson(std::string& out, const stats::Histogram& hist) {
  out += "{\"lo\": ";
  AppendJsonNumber(out, hist.lo());
  out += ", \"hi\": ";
  AppendJsonNumber(out, hist.hi());
  out += ", \"underflow\": " + std::to_string(hist.underflow());
  out += ", \"overflow\": " + std::to_string(hist.overflow());
  out += ", \"total\": " + std::to_string(hist.total());
  out += ", \"bins\": [";
  for (std::size_t i = 0; i < hist.bin_count(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(hist.count(i));
  }
  out += "]}";
}

void AppendSketchJson(std::string& out, const stats::QuantileSketch& sketch, bool full) {
  out += "{";
  if (full) {
    out += "\"alpha\": ";
    AppendJsonNumber(out, sketch.alpha());
    out += ", \"max_buckets\": " + std::to_string(sketch.max_buckets());
    out += ", ";
  }
  out += "\"count\": " + std::to_string(sketch.count());
  out += ", \"zero_count\": " + std::to_string(sketch.zero_count());
  out += ", \"min\": ";
  AppendJsonNumber(out, sketch.min());
  out += ", \"max\": ";
  AppendJsonNumber(out, sketch.max());
  out += ", \"sum\": ";
  AppendJsonNumber(out, sketch.sum());
  // Derived at serialization time from (merged) state, so the fleet
  // bit-identity guarantee covers them too.
  out += ", \"p50\": ";
  AppendJsonNumber(out, sketch.Quantile(0.50));
  out += ", \"p90\": ";
  AppendJsonNumber(out, sketch.Quantile(0.90));
  out += ", \"p99\": ";
  AppendJsonNumber(out, sketch.Quantile(0.99));
  if (full) {
    out += ", \"min_key\": " + std::to_string(sketch.min_key());
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i < sketch.bucket_count(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(sketch.bucket(i));
    }
    out += "]";
  }
  out += "}";
}

const char* ReductionName(stats::TieredRing::Reduction reduction) {
  switch (reduction) {
    case stats::TieredRing::Reduction::kSum:
      return "sum";
    case stats::TieredRing::Reduction::kMax:
      return "max";
    case stats::TieredRing::Reduction::kMean:
      return "mean";
  }
  return "sum";
}

// Compact (flight) ring snapshots carry only this many trailing bins per
// tier - enough for a sparkline, bounded per snapshot.
constexpr std::size_t kCompactRingTail = 32;

void AppendRingJson(std::string& out, const stats::TieredRing& ring, bool full) {
  out += "{\"reduction\": \"";
  out += ReductionName(ring.reduction());
  out += "\", \"dropped_late\": " + std::to_string(ring.dropped_late());
  out += ", \"hurst\": ";
  if (const stats::OnlineHurst* hurst = ring.hurst()) {
    out += "{\"samples\": " + std::to_string(hurst->samples());
    out += ", \"estimate\": ";
    // null until enough scales resolve (AppendJsonNumber maps NaN to null).
    AppendJsonNumber(out, hurst->CanEstimate(0.050, 1800.0)
                              ? hurst->HurstEstimate(0.050, 1800.0)
                              : std::nan(""));
    out += "}";
  } else {
    out += "null";
  }
  out += ", \"tiers\": [";
  for (std::size_t tier = 0; tier < ring.tier_count(); ++tier) {
    if (tier > 0) out += ", ";
    out += "{\"interval\": ";
    AppendJsonNumber(out, ring.tier_interval(tier));
    if (full) out += ", \"capacity\": " + std::to_string(ring.tier_capacity(tier));
    out += ", \"first\": " + std::to_string(ring.tier_first(tier));
    out += ", \"held\": " + std::to_string(ring.tier_held(tier));
    out += ", \"evicted\": " + std::to_string(ring.tier_evicted(tier));
    const stats::TieredRing::TierStats tier_stats = ring.Stats(tier);
    out += ", \"mean\": ";
    AppendJsonNumber(out, tier_stats.mean);
    out += ", \"peak\": ";
    AppendJsonNumber(out, tier_stats.peak);
    const std::vector<double> values =
        ring.RecentValues(tier, full ? ring.tier_held(tier) : kCompactRingTail);
    out += full ? ", \"values\": [" : ", \"recent\": [";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonNumber(out, values[i]);
    }
    out += "]}";
  }
  out += "]}";
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::string out;
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(counter.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": {\"value\": ";
    AppendJsonNumber(out, gauge.value());
    out += ", \"merge\": ";
    out += gauge.merge_mode() == Gauge::MergeMode::kSum ? "\"sum\"" : "\"max\"";
    out += "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": ";
    AppendHistogramJson(out, hist);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"sketches\": {";
  first = true;
  for (const auto& [name, sk] : sketches_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": ";
    AppendSketchJson(out, sk, /*full=*/true);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"rings\": {";
  first = true;
  for (const auto& [name, rg] : rings_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": ";
    AppendRingJson(out, rg, /*full=*/true);
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::WriteJson(std::ostream& out) const { out << ToJson(); }

void MetricsRegistry::ForEachCounter(
    const std::function<void(std::string_view, const Counter&)>& fn) const {
  for (const auto& [name, counter] : counters_) fn(name, counter);
}

void MetricsRegistry::ForEachGauge(
    const std::function<void(std::string_view, const Gauge&)>& fn) const {
  for (const auto& [name, gauge] : gauges_) fn(name, gauge);
}

void MetricsRegistry::ForEachHistogram(
    const std::function<void(std::string_view, const stats::Histogram&)>& fn) const {
  for (const auto& [name, hist] : histograms_) fn(name, hist);
}

void MetricsRegistry::ForEachSketch(
    const std::function<void(std::string_view, const stats::QuantileSketch&)>& fn) const {
  for (const auto& [name, sk] : sketches_) fn(name, sk);
}

void MetricsRegistry::ForEachRing(
    const std::function<void(std::string_view, const stats::TieredRing&)>& fn) const {
  for (const auto& [name, rg] : rings_) fn(name, rg);
}

void MetricsRegistry::AppendCompactJson(std::string& out) const {
  out += "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(counter.value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": {\"value\": ";
    AppendJsonNumber(out, gauge.value());
    out += ", \"merge\": ";
    out += gauge.merge_mode() == Gauge::MergeMode::kSum ? "\"sum\"" : "\"max\"";
    out += "}";
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": ";
    AppendHistogramJson(out, hist);
  }
  out += "}, \"sketches\": {";
  first = true;
  for (const auto& [name, sk] : sketches_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": ";
    AppendSketchJson(out, sk, /*full=*/false);
  }
  out += "}, \"rings\": {";
  first = true;
  for (const auto& [name, rg] : rings_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": ";
    AppendRingJson(out, rg, /*full=*/false);
  }
  out += "}}";
}

}  // namespace gametrace::obs
