#include "net/pcap.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "core/check.h"
#include "net/game_payload.h"

namespace gametrace::net {

namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;
constexpr std::uint16_t kVersionMajor = 2;
constexpr std::uint16_t kVersionMinor = 4;
constexpr std::uint32_t kLinkTypeEthernet = 1;

template <typename T>
void WritePod(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return static_cast<bool>(in);
}

std::uint32_t MaybeSwap(std::uint32_t v, bool swapped) noexcept {
  if (!swapped) return v;
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : out_(path, std::ios::binary | std::ios::trunc), snaplen_(snaplen) {
  GT_CHECK_GT(snaplen, 0u) << "PcapWriter: snaplen must be positive";
  if (!out_) throw PcapError("PcapWriter: cannot open " + path, 0);
  WritePod(out_, kMagic);
  WritePod(out_, kVersionMajor);
  WritePod(out_, kVersionMinor);
  WritePod(out_, std::int32_t{0});   // thiszone
  WritePod(out_, std::uint32_t{0});  // sigfigs
  WritePod(out_, snaplen_);
  WritePod(out_, kLinkTypeEthernet);
}

void PcapWriter::WriteFrame(double timestamp, std::span<const std::uint8_t> frame) {
  // The record header stores unsigned 32-bit seconds: a negative or
  // non-finite timestamp would be undefined behaviour in the cast below.
  GT_CHECK(timestamp >= 0.0 && timestamp < 4294967296.0)
      << "PcapWriter::WriteFrame: timestamp " << timestamp << " outside the pcap epoch range";
  GT_CHECK_LE(frame.size(), std::numeric_limits<std::uint32_t>::max())
      << "PcapWriter::WriteFrame: frame exceeds the 32-bit record length field";
  const auto secs = static_cast<std::uint32_t>(timestamp);
  const auto usecs = static_cast<std::uint32_t>(
      std::lround((timestamp - static_cast<double>(secs)) * 1e6) % 1000000);
  const auto orig_len = static_cast<std::uint32_t>(frame.size());
  const std::uint32_t incl_len = std::min(orig_len, snaplen_);
  WritePod(out_, secs);
  WritePod(out_, usecs);
  WritePod(out_, incl_len);
  WritePod(out_, orig_len);
  out_.write(reinterpret_cast<const char*>(frame.data()), incl_len);
  ++packets_;
}

void PcapWriter::WriteRecord(const PacketRecord& record, const ServerEndpoint& server) {
  FrameSpec spec;
  spec.flow = FlowOf(record, server);
  spec.ip_id = next_ip_id_++;
  const std::vector<std::uint8_t> payload = BuildGamePayload(record);
  const std::vector<std::uint8_t> frame = BuildUdpFrame(spec, payload);
  WriteFrame(record.timestamp, frame);
}

void PcapWriter::Flush() { out_.flush(); }

PcapReader::PcapReader(const std::string& path)
    : in_(std::make_unique<std::ifstream>(path, std::ios::binary)) {
  if (!*in_) throw PcapError("PcapReader: cannot open " + path, 0);
  ReadGlobalHeader();
}

PcapReader::PcapReader(std::unique_ptr<std::istream> in) : in_(std::move(in)) {
  GT_CHECK(in_ != nullptr) << "PcapReader: null stream";
  ReadGlobalHeader();
}

std::uint64_t PcapReader::Offset() const {
  auto pos = in_->tellg();
  if (pos < 0) {
    // tellg refuses to report a position once failbit is set (e.g. after the
    // short read being diagnosed); clear the flags to recover it.
    in_->clear();
    pos = in_->tellg();
  }
  return pos < 0 ? 0 : static_cast<std::uint64_t>(pos);
}

void PcapReader::ReadGlobalHeader() {
  std::uint32_t magic = 0;
  if (!ReadPod(*in_, magic)) throw PcapError("PcapReader: truncated header", Offset());
  if (magic == kMagic) {
    swapped_ = false;
  } else if (MaybeSwap(magic, true) == kMagic) {
    swapped_ = true;
  } else {
    throw PcapError("PcapReader: bad magic (not a classic pcap file)", 0);
  }
  std::uint16_t maj = 0;
  std::uint16_t min = 0;
  std::int32_t zone = 0;
  std::uint32_t sigfigs = 0;
  if (!ReadPod(*in_, maj) || !ReadPod(*in_, min) || !ReadPod(*in_, zone) ||
      !ReadPod(*in_, sigfigs) || !ReadPod(*in_, snaplen_) || !ReadPod(*in_, link_type_)) {
    throw PcapError("PcapReader: truncated global header", Offset());
  }
  snaplen_ = MaybeSwap(snaplen_, swapped_);
  link_type_ = MaybeSwap(link_type_, swapped_);
  if (snaplen_ == 0 || snaplen_ > kMaxSaneLength) {
    throw PcapError("PcapReader: implausible snaplen " + std::to_string(snaplen_), 0);
  }
}

std::optional<PcapPacket> PcapReader::Next() {
  std::uint32_t secs = 0;
  if (!ReadPod(*in_, secs)) return std::nullopt;  // clean EOF
  std::uint32_t usecs = 0;
  std::uint32_t incl = 0;
  std::uint32_t orig = 0;
  if (!ReadPod(*in_, usecs) || !ReadPod(*in_, incl) || !ReadPod(*in_, orig)) {
    throw PcapError("PcapReader: truncated record header", Offset());
  }
  secs = MaybeSwap(secs, swapped_);
  usecs = MaybeSwap(usecs, swapped_);
  incl = MaybeSwap(incl, swapped_);
  orig = MaybeSwap(orig, swapped_);
  // Record sanity: the stored length can never exceed the capture snaplen
  // (with slack for writers that round snaplen up to the next power of two),
  // and the original length can never be smaller than the stored portion.
  if (incl > std::min<std::uint64_t>(std::uint64_t{snaplen_} + 65536u, kMaxSaneLength)) {
    throw PcapError("PcapReader: implausible record length " + std::to_string(incl), Offset());
  }
  if (orig < incl) {
    throw PcapError("PcapReader: record original length below stored length", Offset());
  }

  PcapPacket pkt;
  pkt.timestamp = static_cast<double>(secs) + static_cast<double>(usecs) * 1e-6;
  pkt.frame.resize(incl);
  in_->read(reinterpret_cast<char*>(pkt.frame.data()), incl);
  if (!*in_) throw PcapError("PcapReader: truncated packet body", Offset());
  return pkt;
}

std::vector<PacketRecord> PcapReader::ReadAllRecords(const ServerEndpoint& server,
                                                     std::uint64_t* skipped) {
  std::vector<PacketRecord> records;
  std::uint64_t skip_count = 0;
  while (auto pkt = Next()) {
    ParsedUdpFrame parsed;
    if (!ParseUdpFrame(pkt->frame, parsed)) {
      ++skip_count;
      continue;
    }
    PacketRecord rec;
    rec.timestamp = pkt->timestamp;
    rec.app_bytes = parsed.payload_bytes;
    // Recover the netchannel sequence when the payload carries one.
    const std::size_t eth_ip_udp = pkt->frame.size() - parsed.payload_bytes;
    if (const auto game = ParseGamePayload(
            {pkt->frame.data() + eth_ip_udp, parsed.payload_bytes});
        game && !game->connectionless) {
      rec.seq = game->seq;
    }
    if (parsed.flow.dst_ip == server.ip && parsed.flow.dst_port == server.port) {
      rec.direction = Direction::kClientToServer;
      rec.client_ip = parsed.flow.src_ip;
      rec.client_port = parsed.flow.src_port;
    } else if (parsed.flow.src_ip == server.ip && parsed.flow.src_port == server.port) {
      rec.direction = Direction::kServerToClient;
      rec.client_ip = parsed.flow.dst_ip;
      rec.client_port = parsed.flow.dst_port;
    } else {
      ++skip_count;
      continue;
    }
    records.push_back(rec);
  }
  if (skipped != nullptr) *skipped = skip_count;
  return records;
}

}  // namespace gametrace::net
