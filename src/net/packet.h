// The unit of capture: one observed packet.
//
// Analysis needs exactly what tcpdump gave the paper's authors - timestamp,
// direction, and sizes - plus the client endpoint for per-flow statistics.
// The `kind` field carries simulator ground truth (connection handshake,
// game update, download, ...); honest analyses (session_tracker) ignore it
// and infer structure from timing alone, while tests use it as an oracle.
#pragma once

#include <cstdint>

#include "net/flow.h"
#include "net/ip.h"
#include "net/units.h"

namespace gametrace::net {

enum class Direction : std::uint8_t {
  kClientToServer = 0,  // "incoming" in the paper's tables
  kServerToClient = 1,  // "outgoing"
};

enum class PacketKind : std::uint8_t {
  kGameUpdate = 0,      // periodic state update (the dominant class)
  kConnectRequest = 1,  // client asks for a slot
  kConnectAccept = 2,   // server grants the slot
  kConnectReject = 3,   // server is full
  kDisconnect = 4,      // orderly leave
  kDownload = 5,        // rate-limited map/logo transfer chunk
  kChat = 6,            // text/voice broadcast payload
  kWebData = 7,         // TCP-like bulk-transfer data segment (cross traffic)
  kWebAck = 8,          // TCP-like acknowledgement
};

struct PacketRecord {
  double timestamp = 0.0;  // seconds since trace start
  Ipv4Address client_ip;
  // Netchannel sequence number within this flow direction (Half-Life
  // numbers every in-game packet per channel). 0 means "no sequence" -
  // connectionless handshake traffic. Lets endpoint traces estimate loss
  // from sequence gaps, the classic measurement-study technique.
  std::uint32_t seq = 0;
  std::uint16_t client_port = 0;
  std::uint16_t app_bytes = 0;  // application payload only (as in Table III)
  Direction direction = Direction::kClientToServer;
  PacketKind kind = PacketKind::kGameUpdate;

  [[nodiscard]] std::uint64_t wire_bytes(
      std::uint32_t overhead = kWireOverheadBytes) const noexcept {
    return WireBytes(app_bytes, overhead);
  }

  friend bool operator==(const PacketRecord&, const PacketRecord&) = default;
};

// The server endpoint all trace flows share. Fixed for a capture; carried
// separately from each record to keep records compact.
struct ServerEndpoint {
  Ipv4Address ip{192, 168, 0, 10};
  std::uint16_t port = 27015;  // the classic Half-Life server port
};

// Reconstructs the 5-tuple of a record given the capture's server endpoint.
[[nodiscard]] inline FlowKey FlowOf(const PacketRecord& r, const ServerEndpoint& server) noexcept {
  FlowKey key;
  if (r.direction == Direction::kClientToServer) {
    key.src_ip = r.client_ip;
    key.src_port = r.client_port;
    key.dst_ip = server.ip;
    key.dst_port = server.port;
  } else {
    key.src_ip = server.ip;
    key.src_port = server.port;
    key.dst_ip = r.client_ip;
    key.dst_port = r.client_port;
  }
  key.proto = IpProto::kUdp;
  return key;
}

}  // namespace gametrace::net
