// Columnar packet batches: the struct-of-arrays twin of PacketRecord.
//
// The paper's analyses reduce ~500 M packets to per-interval loads, size
// histograms and flow statistics - a workload that consumes whole *fields*
// (every timestamp, every size), not whole records. Delivering a tick's
// burst as one contiguous array per field lets the stats kernels run
// auto-vectorisable loops over dense u16/u8/double data instead of striding
// through 24-byte records, and lets per-field transforms (the shard IP
// namespace shift) touch one column instead of copying every record.
//
// Two types:
//  * PacketBatch      - a non-owning view: one pointer per column + a count.
//                       Cheap to copy, cheap to re-point (column substitution
//                       is how ShardNamespaceSink/FusedChain rewrite IPs
//                       without copying the other six columns).
//  * ColumnarBatch    - owning storage, reusable across ticks (capacity is
//                       kept by Clear), built either record-by-record by a
//                       producer (CsServer::Emit) or in bulk from an AoS
//                       span (replay readers, the OnBatch->OnColumns shim).
//
// Invariant: a PacketBatch describes exactly the same record sequence as
// the AoS batch it mirrors - RecordAt(i) reconstructs record i bit-for-bit,
// so columnar and AoS delivery are interchangeable and reports stay
// bit-identical (the columnar property tests enforce this per sink).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.h"

namespace gametrace::net {

// Non-owning struct-of-arrays view over a contiguous run of packets. All
// column pointers are valid for `count` elements (or null when count == 0).
// The view follows the batch contract of trace/capture.h: emission order,
// per-flow timestamp order preserved, never spanning a server tick.
struct PacketBatch {
  std::size_t count = 0;
  const double* timestamps = nullptr;
  const std::uint32_t* client_ips = nullptr;
  const std::uint32_t* seqs = nullptr;
  const std::uint16_t* client_ports = nullptr;
  const std::uint16_t* app_bytes = nullptr;
  const std::uint8_t* directions = nullptr;  // static_cast<Direction>
  const std::uint8_t* kinds = nullptr;       // static_cast<PacketKind>

  [[nodiscard]] std::size_t size() const noexcept { return count; }
  [[nodiscard]] bool empty() const noexcept { return count == 0; }

  [[nodiscard]] Direction direction(std::size_t i) const noexcept {
    return static_cast<Direction>(directions[i]);
  }
  [[nodiscard]] PacketKind kind(std::size_t i) const noexcept {
    return static_cast<PacketKind>(kinds[i]);
  }

  // Reconstructs record i exactly as the producer emitted it.
  [[nodiscard]] PacketRecord RecordAt(std::size_t i) const noexcept {
    PacketRecord r;
    r.timestamp = timestamps[i];
    r.client_ip = Ipv4Address(client_ips[i]);
    r.seq = seqs[i];
    r.client_port = client_ports[i];
    r.app_bytes = app_bytes[i];
    r.direction = direction(i);
    r.kind = kind(i);
    return r;
  }

  // Appends the whole batch to `out` as AoS records (the bridge used by
  // sinks without a columnar override).
  void MaterializeInto(std::vector<PacketRecord>& out) const {
    out.reserve(out.size() + count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(RecordAt(i));
  }

  // A view of the same batch with the client-IP column replaced (the shard
  // namespace rewrite: six columns alias, one is swapped).
  [[nodiscard]] PacketBatch WithClientIps(const std::uint32_t* ips) const noexcept {
    PacketBatch view = *this;
    view.client_ips = ips;
    return view;
  }

  // A view over rows [offset, offset + n) of this batch. The caller must
  // keep the slice within a contract-conforming boundary (it still may not
  // span a server tick).
  [[nodiscard]] PacketBatch Slice(std::size_t offset, std::size_t n) const noexcept {
    PacketBatch view;
    view.count = n;
    if (n == 0) return view;
    view.timestamps = timestamps + offset;
    view.client_ips = client_ips + offset;
    view.seqs = seqs + offset;
    view.client_ports = client_ports + offset;
    view.app_bytes = app_bytes + offset;
    view.directions = directions + offset;
    view.kinds = kinds + offset;
    return view;
  }
};

// Owning columnar storage. The column vectors are capacity buffers sized to
// the high-water batch; a separate logical `size_` tracks the live prefix.
// Clear() just resets the size, so the fill/flush cycle a sink repeats every
// batch (ShardNamespaceSink's interior rewrite, FusedChain's AoS shim)
// performs zero allocation and zero re-initialisation after warm-up - the
// transpose is nothing but dense stores.
class ColumnarBatch {
 public:
  void Clear() noexcept { size_ = 0; }

  void Reserve(std::size_t n) {
    if (n > timestamps_.size()) GrowTo(n);
  }

  void PushRecord(const PacketRecord& r) {
    const std::size_t i = size_;
    if (i == timestamps_.size()) GrowTo(i + 1);
    timestamps_[i] = r.timestamp;
    client_ips_[i] = r.client_ip.value();
    seqs_[i] = r.seq;
    client_ports_[i] = r.client_port;
    app_bytes_[i] = r.app_bytes;
    directions_[i] = static_cast<std::uint8_t>(r.direction);
    kinds_[i] = static_cast<std::uint8_t>(r.kind);
    size_ = i + 1;
  }

  // Bulk AoS -> SoA transpose (replay readers, OnBatch shims). Appends.
  // One pass, no per-element capacity checks: each record is read once and
  // fanned out to the seven column streams - this runs once per batch on
  // the interior-rewrite path, so it must not eat the fusion win.
  void Append(std::span<const PacketRecord> records) { AppendWithIpShift(records, 0); }

  // Append + the shard namespace rewrite in the same pass: the client-IP
  // column is written pre-shifted, so an interior rewrite sink transposes
  // and rewrites for the cost of the transpose alone.
  void AppendWithIpShift(std::span<const PacketRecord> records, std::uint32_t ip_shift) {
    const std::size_t old = size_;
    const std::size_t n = records.size();
    const PacketRecord* r = records.data();
    if (old + n > timestamps_.size()) GrowTo(old + n);
    double* ts = timestamps_.data() + old;
    std::uint32_t* ips = client_ips_.data() + old;
    std::uint32_t* seqs = seqs_.data() + old;
    std::uint16_t* ports = client_ports_.data() + old;
    std::uint16_t* bytes = app_bytes_.data() + old;
    std::uint8_t* dirs = directions_.data() + old;
    std::uint8_t* kinds = kinds_.data() + old;
    for (std::size_t i = 0; i < n; ++i) {
      ts[i] = r[i].timestamp;
      ips[i] = r[i].client_ip.value() + ip_shift;
      seqs[i] = r[i].seq;
      ports[i] = r[i].client_port;
      bytes[i] = r[i].app_bytes;
      dirs[i] = static_cast<std::uint8_t>(r[i].direction);
      kinds[i] = static_cast<std::uint8_t>(r[i].kind);
    }
    size_ = old + n;
  }

  // Appends record i of `batch`, copying column-wise (no AoS round trip).
  void PushFrom(const PacketBatch& batch, std::size_t i) {
    const std::size_t j = size_;
    if (j == timestamps_.size()) GrowTo(j + 1);
    timestamps_[j] = batch.timestamps[i];
    client_ips_[j] = batch.client_ips[i];
    seqs_[j] = batch.seqs[i];
    client_ports_[j] = batch.client_ports[i];
    app_bytes_[j] = batch.app_bytes[i];
    directions_[j] = batch.directions[i];
    kinds_[j] = batch.kinds[i];
    size_ = j + 1;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  // Mutable access to the client-IP column, for in-place per-field
  // transforms on a freshly built private copy (the shard namespace shift
  // in ShardNamespaceSink::OnBatch). The other columns stay immutable.
  [[nodiscard]] std::span<std::uint32_t> mutable_client_ips() noexcept {
    return std::span<std::uint32_t>(client_ips_.data(), size_);
  }

  [[nodiscard]] PacketBatch View() const noexcept {
    PacketBatch view;
    view.count = size_;
    if (view.count == 0) return view;
    view.timestamps = timestamps_.data();
    view.client_ips = client_ips_.data();
    view.seqs = seqs_.data();
    view.client_ports = client_ports_.data();
    view.app_bytes = app_bytes_.data();
    view.directions = directions_.data();
    view.kinds = kinds_.data();
    return view;
  }

 private:
  // Capacity growth: amortised doubling from a 64-record floor. The vector
  // elements beyond `size_` are uninitialised scratch by design.
  void GrowTo(std::size_t n) {
    std::size_t cap = timestamps_.size() < 64 ? 64 : timestamps_.size() * 2;
    if (cap < n) cap = n;
    timestamps_.resize(cap);
    client_ips_.resize(cap);
    seqs_.resize(cap);
    client_ports_.resize(cap);
    app_bytes_.resize(cap);
    directions_.resize(cap);
    kinds_.resize(cap);
  }

  std::size_t size_ = 0;
  std::vector<double> timestamps_;
  std::vector<std::uint32_t> client_ips_;
  std::vector<std::uint32_t> seqs_;
  std::vector<std::uint16_t> client_ports_;
  std::vector<std::uint16_t> app_bytes_;
  std::vector<std::uint8_t> directions_;
  std::vector<std::uint8_t> kinds_;
};

}  // namespace gametrace::net
