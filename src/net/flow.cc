#include "net/flow.h"

namespace gametrace::net {

FlowKey FlowKey::Canonical() const noexcept {
  const auto src = std::make_pair(src_ip.value(), src_port);
  const auto dst = std::make_pair(dst_ip.value(), dst_port);
  if (src <= dst) return *this;
  return Reversed();
}

FlowKey FlowKey::Reversed() const noexcept {
  FlowKey out = *this;
  out.src_ip = dst_ip;
  out.dst_ip = src_ip;
  out.src_port = dst_port;
  out.dst_port = src_port;
  return out;
}

std::string FlowKey::ToString() const {
  const char* proto_name = proto == IpProto::kUdp ? "udp" : "tcp";
  return std::string(proto_name) + " " + src_ip.ToString() + ":" + std::to_string(src_port) +
         " -> " + dst_ip.ToString() + ":" + std::to_string(dst_port);
}

std::size_t FlowKeyHash::operator()(const FlowKey& k) const noexcept {
  // FNV-1a over the tuple fields; adequate for hash-map distribution.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(k.src_ip.value());
  mix(k.dst_ip.value());
  mix(k.src_port);
  mix(k.dst_port);
  mix(static_cast<std::uint64_t>(k.proto));
  return static_cast<std::size_t>(h);
}

}  // namespace gametrace::net
