// IPv4 addresses and prefixes.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gametrace::net {

// An IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  [[nodiscard]] std::string ToString() const;

  // Parses dotted-quad notation; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> Parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

// A CIDR prefix, e.g. 10.1.0.0/16.
class Ipv4Prefix {
 public:
  // length must be in [0, 32]; bits beyond the length are zeroed.
  Ipv4Prefix(Ipv4Address address, int length);

  [[nodiscard]] Ipv4Address address() const noexcept { return address_; }
  [[nodiscard]] int length() const noexcept { return length_; }
  [[nodiscard]] std::uint32_t mask() const noexcept;

  [[nodiscard]] bool Contains(Ipv4Address a) const noexcept;

  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  Ipv4Address address_;
  int length_;
};

}  // namespace gametrace::net
