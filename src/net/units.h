// Type-safe byte/bit-rate helpers and wire-overhead constants.
//
// The paper reports both "network" bytes (Table II: 64.42 GB, headers
// included) and "application" bytes (Table III: 37.41 GB). The difference,
// 54 bytes per packet, corresponds to Ethernet framing (header + FCS +
// preamble + inter-frame gap contribution) plus IPv4 and UDP headers; the
// constants below make that accounting explicit and configurable.
#pragma once

#include <cstdint>

namespace gametrace::net {

// Layer overheads, per packet, in bytes.
inline constexpr std::uint32_t kUdpHeaderBytes = 8;
inline constexpr std::uint32_t kIpv4HeaderBytes = 20;
inline constexpr std::uint32_t kEthernetHeaderBytes = 14;
inline constexpr std::uint32_t kEthernetFcsBytes = 4;
inline constexpr std::uint32_t kEthernetPreambleBytes = 8;

// The "wire overhead" used for Table II-style accounting, back-derived from
// the paper: (64.42 GB - 37.41 GB) / 500 M packets = 54 B/packet
// = Ethernet header (14) + FCS (4) + preamble (8) + IPv4 (20) + UDP (8).
inline constexpr std::uint32_t kWireOverheadBytes =
    kEthernetHeaderBytes + kEthernetFcsBytes + kEthernetPreambleBytes +
    kIpv4HeaderBytes + kUdpHeaderBytes;
static_assert(kWireOverheadBytes == 54);

// Minimum Ethernet payload (frames shorter than this are padded on the wire).
inline constexpr std::uint32_t kEthernetMinPayloadBytes = 46;

[[nodiscard]] constexpr std::uint64_t WireBytes(std::uint64_t app_bytes,
                                                std::uint32_t overhead = kWireOverheadBytes) {
  return app_bytes + overhead;
}

// Rate conversions. The paper quotes kilobits as 1000 bits.
[[nodiscard]] constexpr double BitsPerSecond(double bytes, double seconds) {
  return seconds > 0.0 ? bytes * 8.0 / seconds : 0.0;
}

[[nodiscard]] constexpr double Kbps(double bits_per_second) { return bits_per_second / 1e3; }
[[nodiscard]] constexpr double Mbps(double bits_per_second) { return bits_per_second / 1e6; }
[[nodiscard]] constexpr double GigaBytes(std::uint64_t bytes) {
  return static_cast<double>(bytes) / 1e9;
}

// Serialisation time of a frame of `wire_bytes` on a link of `bps` bits/sec.
[[nodiscard]] constexpr double SerializationDelay(std::uint64_t wire_bytes, double bps) {
  return bps > 0.0 ? static_cast<double>(wire_bytes) * 8.0 / bps : 0.0;
}

}  // namespace gametrace::net
