// Wire-format header construction: Ethernet II / IPv4 / UDP.
//
// Used by the pcap exporter to synthesise byte-exact frames for simulated
// packets, with correct IPv4 header checksums and UDP checksums over the
// pseudo-header, so exported captures load cleanly in standard tools.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "net/flow.h"
#include "net/ip.h"

namespace gametrace::net {

using MacAddress = std::array<std::uint8_t, 6>;

// RFC 1071 Internet checksum over `data` (odd lengths padded with zero).
[[nodiscard]] std::uint16_t InternetChecksum(std::span<const std::uint8_t> data) noexcept;

struct FrameSpec {
  MacAddress src_mac{0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  MacAddress dst_mac{0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  FlowKey flow;           // proto must be kUdp for BuildUdpFrame
  std::uint8_t ttl = 64;
  std::uint16_t ip_id = 0;
};

// Serialises a full Ethernet/IPv4/UDP frame carrying `payload`.
// The result is the on-wire frame without preamble or FCS (matching what
// libpcap captures record).
[[nodiscard]] std::vector<std::uint8_t> BuildUdpFrame(const FrameSpec& spec,
                                                      std::span<const std::uint8_t> payload);

// Parsed view of a frame produced by BuildUdpFrame (or any UDP/IPv4 frame).
struct ParsedUdpFrame {
  FlowKey flow;
  std::uint16_t payload_bytes = 0;
  bool ip_checksum_ok = false;
  bool udp_checksum_ok = false;
};

// Parses an Ethernet/IPv4/UDP frame; returns false if the frame is not
// UDP-over-IPv4 or is truncated.
[[nodiscard]] bool ParseUdpFrame(std::span<const std::uint8_t> frame, ParsedUdpFrame& out);

}  // namespace gametrace::net
