// Transport-layer flow identification (5-tuple).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/ip.h"

namespace gametrace::net {

enum class IpProto : std::uint8_t { kUdp = 17, kTcp = 6 };

struct FlowKey {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kUdp;

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;

  // The same key regardless of direction: (lower endpoint, higher endpoint).
  [[nodiscard]] FlowKey Canonical() const noexcept;

  [[nodiscard]] FlowKey Reversed() const noexcept;

  [[nodiscard]] std::string ToString() const;
};

struct FlowKeyHash {
  [[nodiscard]] std::size_t operator()(const FlowKey& k) const noexcept;
};

}  // namespace gametrace::net
