#include "net/ip.h"

#include <charconv>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::net {

std::string Ipv4Address::ToString() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value_ >> shift) & 0xff);
    if (shift > 0) out += '.';
  }
  return out;
}

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned int part = 0;
    const auto [next, ec] = std::from_chars(p, end, part);
    if (ec != std::errc{} || part > 255) return std::nullopt;
    // Reject leading zeros beyond a lone "0" (ambiguous octal forms).
    if (next - p > 1 && *p == '0') return std::nullopt;
    value = (value << 8) | part;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Address(value);
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address address, int length) : length_(length) {
  GT_CHECK(length >= 0 && length <= 32) << "Ipv4Prefix: bad length";
  address_ = Ipv4Address(address.value() & (length == 0 ? 0u : ~0u << (32 - length)));
}

std::uint32_t Ipv4Prefix::mask() const noexcept {
  return length_ == 0 ? 0u : ~0u << (32 - length_);
}

bool Ipv4Prefix::Contains(Ipv4Address a) const noexcept {
  return (a.value() & mask()) == address_.value();
}

std::string Ipv4Prefix::ToString() const {
  return address_.ToString() + "/" + std::to_string(length_);
}

}  // namespace gametrace::net
