#include "net/game_payload.h"

#include <cstring>

namespace gametrace::net {

namespace {

void PutLe32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

std::uint32_t GetLe32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

}  // namespace

std::vector<std::uint8_t> BuildGamePayload(const PacketRecord& record) {
  std::vector<std::uint8_t> payload(record.app_bytes, 0);
  // Deterministic fill so payload bytes are not all-zero (checksummable,
  // compressible like real delta-encoded state).
  for (std::size_t i = kNetchanHeaderBytes < payload.size() ? kNetchanHeaderBytes : 0;
       i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>((record.seq + i * 37 + record.client_port) & 0xff);
  }
  if (payload.size() < kNetchanHeaderBytes) return payload;

  if (record.seq == 0) {
    PutLe32(payload.data(), kConnectionlessMarker);
    PutLe32(payload.data() + 4, static_cast<std::uint32_t>(record.kind));
  } else {
    PutLe32(payload.data(), record.seq);
    // The ack field mirrors the last sequence seen on the reverse channel;
    // the simulator does not track it, so echo seq - 1 (self-consistent).
    PutLe32(payload.data() + 4, record.seq > 0 ? record.seq - 1 : 0);
  }
  return payload;
}

std::optional<ParsedGamePayload> ParseGamePayload(std::span<const std::uint8_t> payload) {
  if (payload.size() < kNetchanHeaderBytes) return std::nullopt;
  ParsedGamePayload parsed;
  const std::uint32_t first = GetLe32(payload.data());
  if (first == kConnectionlessMarker) {
    parsed.connectionless = true;
    return parsed;
  }
  parsed.seq = first;
  parsed.ack = GetLe32(payload.data() + 4);
  return parsed;
}

}  // namespace gametrace::net
