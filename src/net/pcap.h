// libpcap capture-file writer and reader (classic format, magic 0xa1b2c3d4,
// microsecond timestamps, LINKTYPE_ETHERNET).
//
// The paper's raw material is a tcpdump capture; this module lets the
// simulator export byte-exact equivalents and lets the analysis pipeline
// ingest real pcap files too.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace gametrace::net {

struct PcapPacket {
  double timestamp = 0.0;  // seconds (+ fractional microseconds)
  std::vector<std::uint8_t> frame;
};

class PcapWriter {
 public:
  // Creates/truncates `path` and writes the global header.
  // snaplen: maximum stored frame size (longer frames are truncated, with
  // the original length recorded, exactly as tcpdump -s does).
  explicit PcapWriter(const std::string& path, std::uint32_t snaplen = 65535);

  // Writes a raw frame at `timestamp` seconds.
  void WriteFrame(double timestamp, std::span<const std::uint8_t> frame);

  // Convenience: synthesises the Ethernet/IPv4/UDP frame for a simulated
  // record (payload filled with zeros of the recorded length) and writes it.
  void WriteRecord(const PacketRecord& record, const ServerEndpoint& server);

  [[nodiscard]] std::uint64_t packets_written() const noexcept { return packets_; }

  void Flush();

 private:
  std::ofstream out_;
  std::uint32_t snaplen_;
  std::uint64_t packets_ = 0;
  std::uint16_t next_ip_id_ = 1;
};

class PcapReader {
 public:
  explicit PcapReader(const std::string& path);

  // Reads the next packet; nullopt at end of file. Throws std::runtime_error
  // on a corrupt record.
  std::optional<PcapPacket> Next();

  [[nodiscard]] std::uint32_t snaplen() const noexcept { return snaplen_; }
  [[nodiscard]] std::uint32_t link_type() const noexcept { return link_type_; }

  // Reads the remaining packets, parsing each as UDP/IPv4 and converting to
  // PacketRecord relative to `server` (direction inferred from which side is
  // the server endpoint). Non-UDP or non-server frames are skipped and
  // counted in `skipped`.
  std::vector<PacketRecord> ReadAllRecords(const ServerEndpoint& server,
                                           std::uint64_t* skipped = nullptr);

 private:
  std::ifstream in_;
  bool swapped_ = false;  // file written with opposite endianness
  std::uint32_t snaplen_ = 0;
  std::uint32_t link_type_ = 0;
};

}  // namespace gametrace::net
