// libpcap capture-file writer and reader (classic format, magic 0xa1b2c3d4,
// microsecond timestamps, LINKTYPE_ETHERNET).
//
// The paper's raw material is a tcpdump capture; this module lets the
// simulator export byte-exact equivalents and lets the analysis pipeline
// ingest real pcap files too.
//
// Error model: a malformed *file* (truncated, bad magic, implausible record
// length) is environmental input, not a bug, so it raises PcapError - a
// std::runtime_error carrying the byte offset of the damage. Misuse of the
// API (negative timestamps, oversized frames, zero snaplen) is a contract
// violation and fails through GT_CHECK.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace gametrace::net {

// Corrupt or truncated pcap input. `offset` is the file position (in bytes)
// at which the reader detected the damage.
class PcapError : public std::runtime_error {
 public:
  PcapError(const std::string& what, std::uint64_t offset)
      : std::runtime_error(what + " (at byte offset " + std::to_string(offset) + ")"),
        offset_(offset) {}

  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::uint64_t offset_;
};

struct PcapPacket {
  double timestamp = 0.0;  // seconds (+ fractional microseconds)
  std::vector<std::uint8_t> frame;
};

class PcapWriter {
 public:
  // Creates/truncates `path` and writes the global header.
  // snaplen: maximum stored frame size (longer frames are truncated, with
  // the original length recorded, exactly as tcpdump -s does). Must be > 0.
  explicit PcapWriter(const std::string& path, std::uint32_t snaplen = 65535);

  // Writes a raw frame at `timestamp` seconds. The timestamp must be finite
  // and non-negative (the record header stores unsigned seconds).
  void WriteFrame(double timestamp, std::span<const std::uint8_t> frame);

  // Convenience: synthesises the Ethernet/IPv4/UDP frame for a simulated
  // record (payload filled with zeros of the recorded length) and writes it.
  void WriteRecord(const PacketRecord& record, const ServerEndpoint& server);

  [[nodiscard]] std::uint64_t packets_written() const noexcept { return packets_; }

  void Flush();

 private:
  std::ofstream out_;
  std::uint32_t snaplen_;
  std::uint64_t packets_ = 0;
  std::uint16_t next_ip_id_ = 1;
};

class PcapReader {
 public:
  // Largest snaplen / record length the reader accepts before declaring the
  // file corrupt. Real capture tools cap snaplen at 256 KiB; 64 MiB leaves
  // two orders of magnitude of headroom while still rejecting the resize
  // bombs a corrupt length field would otherwise trigger.
  static constexpr std::uint32_t kMaxSaneLength = 64u * 1024 * 1024;

  // Opens `path`; throws PcapError if the file cannot be opened or its
  // global header is damaged.
  explicit PcapReader(const std::string& path);

  // Reads from an arbitrary stream (in-memory parsing, fuzz harnesses).
  explicit PcapReader(std::unique_ptr<std::istream> in);

  // Reads the next packet; nullopt at end of file. Throws PcapError on a
  // corrupt record.
  std::optional<PcapPacket> Next();

  [[nodiscard]] std::uint32_t snaplen() const noexcept { return snaplen_; }
  [[nodiscard]] std::uint32_t link_type() const noexcept { return link_type_; }

  // Reads the remaining packets, parsing each as UDP/IPv4 and converting to
  // PacketRecord relative to `server` (direction inferred from which side is
  // the server endpoint). Non-UDP or non-server frames are skipped and
  // counted in `skipped`.
  std::vector<PacketRecord> ReadAllRecords(const ServerEndpoint& server,
                                           std::uint64_t* skipped = nullptr);

 private:
  void ReadGlobalHeader();
  [[nodiscard]] std::uint64_t Offset() const;

  std::unique_ptr<std::istream> in_;
  bool swapped_ = false;  // file written with opposite endianness
  std::uint32_t snaplen_ = 0;
  std::uint32_t link_type_ = 0;
};

}  // namespace gametrace::net
