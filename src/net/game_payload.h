// Half-Life-style netchannel payload synthesis and parsing.
//
// Real HL packets begin with an 8-byte netchannel header (32-bit outgoing
// sequence, 32-bit acknowledged sequence); connectionless control packets
// begin with 0xFFFFFFFF instead. The pcap exporter fills simulated
// payloads with these headers so exported captures carry the sequence
// numbers a real measurement study would mine for loss/reordering.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace gametrace::net {

inline constexpr std::uint32_t kConnectionlessMarker = 0xFFFFFFFFu;
inline constexpr std::size_t kNetchanHeaderBytes = 8;

// Builds a payload of exactly `record.app_bytes` bytes for the record:
// sequenced records get (seq, ack) followed by a deterministic fill;
// connectionless records (seq == 0) get the 0xFFFFFFFF marker and a kind
// tag. Payloads shorter than the header are truncated raw fill.
[[nodiscard]] std::vector<std::uint8_t> BuildGamePayload(const PacketRecord& record);

struct ParsedGamePayload {
  bool connectionless = false;
  std::uint32_t seq = 0;  // 0 for connectionless payloads
  std::uint32_t ack = 0;
};

// Parses a payload produced by BuildGamePayload. Returns nullopt for
// payloads too short to carry a netchannel header.
[[nodiscard]] std::optional<ParsedGamePayload> ParseGamePayload(
    std::span<const std::uint8_t> payload);

}  // namespace gametrace::net
