#include "net/headers.h"

#include <cstring>

namespace gametrace::net {

namespace {

constexpr std::size_t kEthLen = 14;
constexpr std::size_t kIpLen = 20;
constexpr std::size_t kUdpLen = 8;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

void Put16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

void Put32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t Get16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t Get32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

// Checksum accumulation that can be chained across buffers (needed for the
// UDP pseudo-header).
std::uint32_t ChecksumAccumulate(std::uint32_t acc, std::span<const std::uint8_t> data) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i] << 8);
  return acc;
}

std::uint16_t ChecksumFinish(std::uint32_t acc) noexcept {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

}  // namespace

std::uint16_t InternetChecksum(std::span<const std::uint8_t> data) noexcept {
  return ChecksumFinish(ChecksumAccumulate(0, data));
}

std::vector<std::uint8_t> BuildUdpFrame(const FrameSpec& spec,
                                        std::span<const std::uint8_t> payload) {
  const std::size_t udp_total = kUdpLen + payload.size();
  const std::size_t ip_total = kIpLen + udp_total;
  std::vector<std::uint8_t> frame(kEthLen + ip_total, 0);
  std::uint8_t* eth = frame.data();
  std::uint8_t* ip = eth + kEthLen;
  std::uint8_t* udp = ip + kIpLen;

  // Ethernet II.
  std::memcpy(eth, spec.dst_mac.data(), 6);
  std::memcpy(eth + 6, spec.src_mac.data(), 6);
  Put16(eth + 12, kEtherTypeIpv4);

  // IPv4.
  ip[0] = 0x45;  // version 4, IHL 5
  ip[1] = 0x00;  // DSCP/ECN
  Put16(ip + 2, static_cast<std::uint16_t>(ip_total));
  Put16(ip + 4, spec.ip_id);
  Put16(ip + 6, 0x4000);  // DF, no fragment offset
  ip[8] = spec.ttl;
  ip[9] = static_cast<std::uint8_t>(IpProto::kUdp);
  Put16(ip + 10, 0);  // checksum placeholder
  Put32(ip + 12, spec.flow.src_ip.value());
  Put32(ip + 16, spec.flow.dst_ip.value());
  Put16(ip + 10, InternetChecksum({ip, kIpLen}));

  // UDP.
  Put16(udp + 0, spec.flow.src_port);
  Put16(udp + 2, spec.flow.dst_port);
  Put16(udp + 4, static_cast<std::uint16_t>(udp_total));
  Put16(udp + 6, 0);  // checksum placeholder
  if (!payload.empty()) std::memcpy(udp + kUdpLen, payload.data(), payload.size());

  // UDP checksum over pseudo-header + UDP header + payload.
  std::array<std::uint8_t, 12> pseudo{};
  Put32(pseudo.data(), spec.flow.src_ip.value());
  Put32(pseudo.data() + 4, spec.flow.dst_ip.value());
  pseudo[8] = 0;
  pseudo[9] = static_cast<std::uint8_t>(IpProto::kUdp);
  Put16(pseudo.data() + 10, static_cast<std::uint16_t>(udp_total));
  std::uint32_t acc = ChecksumAccumulate(0, pseudo);
  acc = ChecksumAccumulate(acc, {udp, udp_total});
  std::uint16_t udp_sum = ChecksumFinish(acc);
  if (udp_sum == 0) udp_sum = 0xffff;  // RFC 768: 0 means "no checksum"
  Put16(udp + 6, udp_sum);

  return frame;
}

bool ParseUdpFrame(std::span<const std::uint8_t> frame, ParsedUdpFrame& out) {
  if (frame.size() < kEthLen + kIpLen + kUdpLen) return false;
  const std::uint8_t* eth = frame.data();
  if (Get16(eth + 12) != kEtherTypeIpv4) return false;

  const std::uint8_t* ip = eth + kEthLen;
  if ((ip[0] >> 4) != 4) return false;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
  if (ihl < kIpLen || frame.size() < kEthLen + ihl + kUdpLen) return false;
  if (ip[9] != static_cast<std::uint8_t>(IpProto::kUdp)) return false;

  const std::uint16_t ip_total = Get16(ip + 2);
  if (ip_total < ihl + kUdpLen || frame.size() < kEthLen + ip_total) return false;

  out.flow.proto = IpProto::kUdp;
  out.flow.src_ip = Ipv4Address(Get32(ip + 12));
  out.flow.dst_ip = Ipv4Address(Get32(ip + 16));
  out.ip_checksum_ok = InternetChecksum({ip, ihl}) == 0;

  const std::uint8_t* udp = ip + ihl;
  out.flow.src_port = Get16(udp + 0);
  out.flow.dst_port = Get16(udp + 2);
  const std::uint16_t udp_total = Get16(udp + 4);
  if (udp_total < kUdpLen || kEthLen + ihl + udp_total > frame.size()) return false;
  out.payload_bytes = static_cast<std::uint16_t>(udp_total - kUdpLen);

  if (Get16(udp + 6) == 0) {
    out.udp_checksum_ok = true;  // checksum not in use
  } else {
    std::array<std::uint8_t, 12> pseudo{};
    Put32(pseudo.data(), out.flow.src_ip.value());
    Put32(pseudo.data() + 4, out.flow.dst_ip.value());
    pseudo[8] = 0;
    pseudo[9] = static_cast<std::uint8_t>(IpProto::kUdp);
    Put16(pseudo.data() + 10, udp_total);
    std::uint32_t acc = ChecksumAccumulate(0, pseudo);
    acc = ChecksumAccumulate(acc, {udp, udp_total});
    out.udp_checksum_ok = ChecksumFinish(acc) == 0;
  }
  return true;
}

}  // namespace gametrace::net
