#include "web/web_traffic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/random.h"

#include "core/check.h"

namespace gametrace::web {

WebTrafficSource::WebTrafficSource(sim::Simulator& simulator, const WebConfig& config,
                                   trace::CaptureSink& sink)
    : simulator_(&simulator), config_(config), rng_(config.seed), sink_(&sink) {
  GT_CHECK(config.flow_arrival_rate > 0.0)
      << "WebTrafficSource: flow arrival rate must be positive";
  GT_CHECK_GT(config.pareto_alpha, 1.0) << "WebTrafficSource: pareto_alpha must exceed 1";
  GT_CHECK(config.initial_window != 0 && config.max_window >= config.initial_window)
      << "WebTrafficSource: bad window configuration";
  GT_CHECK_GT(config.ack_every, 0) << "WebTrafficSource: ack_every must be positive";
}

void WebTrafficSource::Start() { ScheduleNextFlow(); }

void WebTrafficSource::ScheduleNextFlow() {
  simulator_->After(sim::Exponential(rng_, 1.0 / config_.flow_arrival_rate), [this] {
    StartFlow();
    ScheduleNextFlow();
  });
}

void WebTrafficSource::StartFlow() {
  ++flows_started_;
  const std::uint64_t id = next_flow_id_++;
  Flow flow;
  // Remote web hosts: 198.18.0.0/15 benchmark space, spread by flow id.
  flow.host = net::Ipv4Address(0xC6120000u | static_cast<std::uint32_t>(id & 0xFFFF));
  flow.port = static_cast<std::uint16_t>(1024 + rng_.NextBelow(60000));
  const double x_m =
      config_.mean_transfer_bytes * (config_.pareto_alpha - 1.0) / config_.pareto_alpha;
  const double bytes = std::min(config_.max_transfer_bytes,
                                sim::Pareto(rng_, x_m, config_.pareto_alpha));
  flow.remaining_segments = static_cast<std::uint64_t>(
      std::ceil(bytes / static_cast<double>(config_.mss_bytes)));
  flow.cwnd = config_.initial_window;
  flows_.emplace(id, flow);
  SendWindow(id);
}

void WebTrafficSource::SendWindow(std::uint64_t flow_id) {
  const auto it = flows_.find(flow_id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;

  // Send up to cwnd segments back-to-back (paced within a few ms), then
  // wait one RTT for the acks and double the window (slow start, capped).
  const std::uint32_t burst = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(flow.cwnd, flow.remaining_segments));
  for (std::uint32_t i = 0; i < burst; ++i) {
    EmitData(flow);
    if (++flow.segments_since_ack >= config_.ack_every) {
      flow.segments_since_ack = 0;
      EmitAck(flow);
    }
  }
  flow.remaining_segments -= burst;
  if (flow.remaining_segments == 0) {
    if (flow.segments_since_ack > 0) EmitAck(flow);  // final ack
    ++flows_completed_;
    flows_.erase(it);
    return;
  }
  flow.cwnd = std::min(config_.max_window, flow.cwnd * 2);
  simulator_->After(config_.rtt, [this, flow_id] { SendWindow(flow_id); });
}

void WebTrafficSource::EmitData(Flow& flow) {
  net::PacketRecord record;
  // Segments within the window are spaced a few hundred microseconds
  // apart (access-link serialisation).
  record.timestamp =
      simulator_->Now() + static_cast<double>(data_packets_ % 16) * 2e-4;
  record.client_ip = flow.host;
  record.client_port = flow.port;
  record.app_bytes = config_.mss_bytes;
  record.direction = net::Direction::kClientToServer;  // toward the LAN
  record.kind = net::PacketKind::kWebData;
  record.seq = flow.seq++;
  ++data_packets_;
  data_bytes_ += config_.mss_bytes;
  sink_->OnPacket(record);
}

void WebTrafficSource::EmitAck(Flow& flow) {
  net::PacketRecord record;
  record.timestamp = simulator_->Now() + config_.rtt / 2.0;
  record.client_ip = flow.host;
  record.client_port = flow.port;
  record.app_bytes = config_.ack_bytes;
  record.direction = net::Direction::kServerToClient;  // back out to the host
  record.kind = net::PacketKind::kWebAck;
  ++ack_packets_;
  sink_->OnPacket(record);
}

}  // namespace gametrace::web
