// TCP-like bulk-transfer cross traffic.
//
// The paper's foil: "the majority of traffic being carried in today's
// networks involve bulk data transfers using TCP ... data segments can be
// close to an order of magnitude larger than game traffic", and its
// warning that "any further degradation caused by additional players
// and/or background traffic will simply cause players to quit playing."
//
// WebTrafficSource emits packet records shaped like TCP downloads sharing
// the game server's bottleneck: flows arrive Poisson, transfer sizes are
// Pareto heavy-tailed, data flows in MSS-sized segments paced by a
// slow-start/congestion-window model over a configurable RTT, and the
// receiver acks every other segment with 40-byte packets. Direction
// semantics match the game capture: data segments travel toward the
// server-side LAN (kClientToServer) and acks travel out - so the stream
// can be injected straight into a NatDevice or DeviceChain alongside the
// game traffic.
#pragma once

#include <cstdint>

#include <unordered_map>

#include "net/packet.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "trace/capture.h"

namespace gametrace::web {

struct WebConfig {
  double flow_arrival_rate = 0.2;  // new downloads per second
  // Pareto transfer sizes: web-object heavy tail (alpha < 2).
  double mean_transfer_bytes = 120e3;
  double pareto_alpha = 1.3;
  double max_transfer_bytes = 20e6;  // truncate the tail (one flow != forever)

  std::uint16_t mss_bytes = 1460;  // data segment payload
  std::uint16_t ack_bytes = 40;

  double rtt = 0.080;              // sender-receiver round trip
  std::uint32_t initial_window = 2;   // segments
  std::uint32_t max_window = 32;      // receiver window cap, segments
  int ack_every = 2;               // delayed acks

  std::uint64_t seed = 77;
};

class WebTrafficSource {
 public:
  // Every emitted record goes to `sink` (borrowed, must outlive source).
  WebTrafficSource(sim::Simulator& simulator, const WebConfig& config,
                   trace::CaptureSink& sink);

  WebTrafficSource(const WebTrafficSource&) = delete;
  WebTrafficSource& operator=(const WebTrafficSource&) = delete;

  // Starts the flow-arrival process; flows end on their own.
  void Start();

  [[nodiscard]] std::uint64_t flows_started() const noexcept { return flows_started_; }
  [[nodiscard]] std::uint64_t flows_completed() const noexcept { return flows_completed_; }
  [[nodiscard]] std::uint64_t data_packets() const noexcept { return data_packets_; }
  [[nodiscard]] std::uint64_t ack_packets() const noexcept { return ack_packets_; }
  [[nodiscard]] std::uint64_t data_bytes() const noexcept { return data_bytes_; }

 private:
  struct Flow {
    net::Ipv4Address host;
    std::uint16_t port = 80;
    std::uint64_t remaining_segments = 0;
    std::uint32_t cwnd = 2;
    std::uint32_t seq = 1;
    int segments_since_ack = 0;
  };

  void ScheduleNextFlow();
  void StartFlow();
  void SendWindow(std::uint64_t flow_id);
  void EmitData(Flow& flow);
  void EmitAck(Flow& flow);

  sim::Simulator* simulator_;
  WebConfig config_;
  sim::Rng rng_;
  trace::CaptureSink* sink_;
  std::uint64_t next_flow_id_ = 1;
  std::unordered_map<std::uint64_t, Flow> flows_;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t data_packets_ = 0;
  std::uint64_t ack_packets_ = 0;
  std::uint64_t data_bytes_ = 0;
};

}  // namespace gametrace::web
