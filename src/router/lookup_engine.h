// Per-packet route-lookup service-time model.
//
// Router vendors size their lookup path for 125-250 B average packets
// (paper section IV-A); for a device like the SMC Barricade that works out
// to a *packet* capacity of 1000-1500 pps regardless of packet size. The
// engine draws a service time per packet around 1/capacity.
#pragma once

#include "sim/rng.h"

namespace gametrace::router {

class LookupEngine {
 public:
  // mean_capacity_pps: average packets/sec the engine can route.
  // jitter_fraction: uniform multiplicative jitter on the per-packet time,
  // e.g. 0.25 means each service takes (1 +/- 0.25) / capacity seconds.
  LookupEngine(double mean_capacity_pps, double jitter_fraction, sim::Rng rng);

  [[nodiscard]] double DrawServiceTime();

  [[nodiscard]] double mean_capacity_pps() const noexcept { return capacity_pps_; }
  [[nodiscard]] double mean_service_time() const noexcept { return 1.0 / capacity_pps_; }

 private:
  double capacity_pps_;
  double jitter_;
  sim::Rng rng_;
};

}  // namespace gametrace::router
