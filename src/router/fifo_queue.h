// Finite drop-tail FIFO with occupancy accounting.
//
// This is the shared buffer inside the NAT-device model; its size is the
// knob that determines how much of a 50 ms broadcast burst survives.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>

#include "net/packet.h"
#include "obs/metrics.h"
#include "stats/running_stats.h"

namespace gametrace::router {

// Which physical port a packet entered the device on.
enum class NatPort : std::uint8_t {
  kLan = 0,  // server side
  kWan = 1,  // Internet / clients side
};

struct QueuedPacket {
  net::PacketRecord record;
  NatPort in_port = NatPort::kLan;
  double enqueued_at = 0.0;
};

class FifoQueue {
 public:
  explicit FifoQueue(std::size_t capacity);

  // False (and a drop count) when the queue is full.
  bool TryPush(QueuedPacket packet);

  [[nodiscard]] std::optional<QueuedPacket> Pop();

  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] bool full() const noexcept { return queue_.size() >= capacity_; }

  [[nodiscard]] std::uint64_t pushes() const noexcept { return pushes_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::size_t max_occupancy() const noexcept { return max_occupancy_; }
  [[nodiscard]] const stats::RunningStats& occupancy_at_push() const noexcept {
    return occupancy_;
  }

  // Mirrors this queue's accounting into `registry` as "<prefix>.pushes" /
  // "<prefix>.drops" counters and a "<prefix>.high_water" kMax gauge.
  // The registry must outlive the queue; existing counts are carried over
  // so binding after traffic has flowed loses nothing.
  void BindMetrics(obs::MetricsRegistry& registry, std::string_view prefix);

 private:
  std::size_t capacity_;
  std::deque<QueuedPacket> queue_;
  std::uint64_t pushes_ = 0;
  std::uint64_t drops_ = 0;
  std::size_t max_occupancy_ = 0;
  stats::RunningStats occupancy_;
  obs::Counter* metric_pushes_ = nullptr;
  obs::Counter* metric_drops_ = nullptr;
  obs::Gauge* metric_high_water_ = nullptr;
};

}  // namespace gametrace::router
