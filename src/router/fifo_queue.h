// Finite drop-tail FIFO with occupancy accounting.
//
// This is the shared buffer inside the NAT-device model; its size is the
// knob that determines how much of a 50 ms broadcast burst survives.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.h"
#include "stats/running_stats.h"

namespace gametrace::router {

// Which physical port a packet entered the device on.
enum class NatPort : std::uint8_t {
  kLan = 0,  // server side
  kWan = 1,  // Internet / clients side
};

struct QueuedPacket {
  net::PacketRecord record;
  NatPort in_port = NatPort::kLan;
  double enqueued_at = 0.0;
};

class FifoQueue {
 public:
  explicit FifoQueue(std::size_t capacity);

  // False (and a drop count) when the queue is full.
  bool TryPush(QueuedPacket packet);

  [[nodiscard]] std::optional<QueuedPacket> Pop();

  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] bool full() const noexcept { return queue_.size() >= capacity_; }

  [[nodiscard]] std::uint64_t pushes() const noexcept { return pushes_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::size_t max_occupancy() const noexcept { return max_occupancy_; }
  [[nodiscard]] const stats::RunningStats& occupancy_at_push() const noexcept {
    return occupancy_;
  }

 private:
  std::size_t capacity_;
  std::deque<QueuedPacket> queue_;
  std::uint64_t pushes_ = 0;
  std::uint64_t drops_ = 0;
  std::size_t max_occupancy_ = 0;
  stats::RunningStats occupancy_;
};

}  // namespace gametrace::router
