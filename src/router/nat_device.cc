#include "router/nat_device.h"

#include <algorithm>

#include "obs/obs.h"
#include "obs/trace_log.h"
#include "sim/random.h"

namespace gametrace::router {

NatDevice::NatDevice(sim::Simulator& simulator, const Config& config)
    : simulator_(&simulator),
      config_(config),
      rng_(config.seed),
      engine_(config.mean_capacity_pps, config.service_jitter, rng_.Split()),
      lan_q_(config.lan_buffer),
      wan_q_(config.wan_buffer),
      stats_(config.stats_interval),
      injector_(*this),
      trace_(obs::Current().trace) {
  // The queue instruments live next to the segment counters, so one
  // metrics export describes the whole device.
  lan_q_.BindMetrics(stats_.metrics(), "nat.lan_q");
  wan_q_.BindMetrics(stats_.metrics(), "nat.wan_q");
  if (obs::MetricsRegistry* ambient = obs::Current().metrics; ambient != nullptr) {
    episodes_counter_ = &ambient->counter("nat.livelock_episodes");
  }
}

void NatDevice::InjectorSink::OnPacket(const net::PacketRecord& record) {
  const double at = std::max(device_->simulator_->Now(), record.timestamp);
  device_->simulator_->At(at, [device = device_, record] { device->OnArrival(record); });
}

void NatDevice::Start() {
  if (started_) return;
  started_ = true;
  ScheduleNextEpisode();
}

void NatDevice::ScheduleNextEpisode() {
  if (config_.episode_mean_interval <= 0.0) return;  // livelock disabled
  const double gap = sim::Exponential(rng_, config_.episode_mean_interval);
  simulator_->After(gap, [this] {
    ++episodes_;
    if (episodes_counter_ != nullptr) episodes_counter_->Add();
    const double now = simulator_->Now();
    if (trace_ != nullptr) trace_->Instant("livelock_episode", "nat", now);
    wan_starved_until_ = now + sim::Uniform(rng_, config_.episode_min_duration,
                                            config_.episode_max_duration);
    full_stall_until_ = now + config_.episode_full_stall;
    ScheduleNextEpisode();
  });
}

void NatDevice::OnArrival(const net::PacketRecord& record) {
  const double now = simulator_->Now();
  const bool from_lan = record.direction == net::Direction::kServerToClient;
  const Segment arrival = from_lan ? Segment::kServerToNat : Segment::kClientsToNat;
  stats_.Count(arrival, now);

  if (!from_lan) {
    // NAT translation state for the client endpoint.
    const std::uint64_t key =
        (std::uint64_t{record.client_ip.value()} << 16) | record.client_port;
    if (nat_table_.emplace(key, next_external_port_).second) ++next_external_port_;
  }

  FifoQueue& queue = from_lan ? lan_q_ : wan_q_;
  QueuedPacket packet{record, from_lan ? NatPort::kLan : NatPort::kWan, now};
  if (!queue.TryPush(std::move(packet))) {
    Drop(record, arrival);
    return;
  }
  TryBeginService();
}

void NatDevice::TryBeginService() {
  if (busy_) return;
  const double now = simulator_->Now();

  // Total livelock: the CPU does nothing until the stall ends.
  if (now < full_stall_until_) {
    if (!wake_pending_) {
      wake_pending_ = true;
      wake_event_ = simulator_->At(full_stall_until_, [this] {
        wake_pending_ = false;
        TryBeginService();
      });
    }
    return;
  }

  // Strict LAN-first service; the WAN ring additionally starves during a
  // livelock episode.
  std::optional<QueuedPacket> packet = lan_q_.Pop();
  if (!packet && now >= wan_starved_until_) packet = wan_q_.Pop();
  if (!packet) {
    // If the WAN queue holds packets but is starved, wake up when the
    // episode ends so they are not stuck forever.
    if (!wan_q_.empty() && !wake_pending_) {
      wake_pending_ = true;
      wake_event_ = simulator_->At(wan_starved_until_, [this] {
        wake_pending_ = false;
        TryBeginService();
      });
    }
    return;
  }

  busy_ = true;
  const double service = engine_.DrawServiceTime();
  simulator_->After(service, [this, pkt = std::move(*packet)]() mutable {
    CompleteService(std::move(pkt));
  });
}

void NatDevice::CompleteService(QueuedPacket packet) {
  const double now = simulator_->Now();
  busy_ = false;
  stats_.RecordDelay(now - packet.enqueued_at);
  const Segment out = packet.in_port == NatPort::kLan ? Segment::kNatToClients
                                                      : Segment::kNatToServer;
  stats_.Count(out, now);
  if (deliver_) deliver_(packet.record, out);
  TryBeginService();
}

void NatDevice::Drop(const net::PacketRecord& record, Segment arrival_segment) {
  stats_.CountDrop(arrival_segment, simulator_->Now());
  if (trace_ != nullptr) {
    trace_->Instant(arrival_segment == Segment::kClientsToNat ? "nat_drop_incoming"
                                                              : "nat_drop_outgoing",
                    "nat", simulator_->Now());
  }
  if (on_loss_) on_loss_(record, arrival_segment);
}

}  // namespace gametrace::router
