#include "router/routing_table.h"

namespace gametrace::router {

namespace {

// Bit i (0 = most significant) of a 32-bit address.
constexpr int BitAt(std::uint32_t value, int i) noexcept {
  return static_cast<int>((value >> (31 - i)) & 1u);
}

}  // namespace

RoutingTable::RoutingTable() { nodes_.emplace_back(); }

void RoutingTable::Insert(const net::Ipv4Prefix& prefix, std::uint32_t next_hop) {
  std::int32_t node = 0;
  for (int depth = 0; depth < prefix.length(); ++depth) {
    const int bit = BitAt(prefix.address().value(), depth);
    if (nodes_[static_cast<std::size_t>(node)].child[bit] < 0) {
      nodes_[static_cast<std::size_t>(node)].child[bit] =
          static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    node = nodes_[static_cast<std::size_t>(node)].child[bit];
  }
  Node& leaf = nodes_[static_cast<std::size_t>(node)];
  if (!leaf.has_route) ++routes_;
  leaf.has_route = true;
  leaf.next_hop = next_hop;
}

std::optional<std::uint32_t> RoutingTable::Lookup(net::Ipv4Address address) const {
  std::optional<std::uint32_t> best;
  std::int32_t node = 0;
  int depth = 0;
  while (node >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.has_route) best = n.next_hop;
    if (depth == 32) break;
    node = n.child[BitAt(address.value(), depth)];
    ++depth;
  }
  return best;
}

std::int32_t RoutingTable::FindNode(const net::Ipv4Prefix& prefix) const noexcept {
  std::int32_t node = 0;
  for (int depth = 0; depth < prefix.length() && node >= 0; ++depth) {
    node = nodes_[static_cast<std::size_t>(node)].child[BitAt(prefix.address().value(), depth)];
  }
  return node;
}

std::optional<std::uint32_t> RoutingTable::Exact(const net::Ipv4Prefix& prefix) const {
  const std::int32_t node = FindNode(prefix);
  if (node < 0 || !nodes_[static_cast<std::size_t>(node)].has_route) return std::nullopt;
  return nodes_[static_cast<std::size_t>(node)].next_hop;
}

bool RoutingTable::Remove(const net::Ipv4Prefix& prefix) {
  const std::int32_t node = FindNode(prefix);
  if (node < 0 || !nodes_[static_cast<std::size_t>(node)].has_route) return false;
  nodes_[static_cast<std::size_t>(node)].has_route = false;
  --routes_;
  return true;
}

std::size_t RoutingTable::LookupCost(net::Ipv4Address address) const noexcept {
  std::size_t visited = 1;
  std::int32_t node = 0;
  int depth = 0;
  while (depth < 32) {
    node = nodes_[static_cast<std::size_t>(node)].child[BitAt(address.value(), depth)];
    if (node < 0) break;
    ++visited;
    ++depth;
  }
  return visited;
}

}  // namespace gametrace::router
