#include "router/device_stats.h"

namespace gametrace::router {

const char* SegmentName(Segment s) noexcept {
  switch (s) {
    case Segment::kServerToNat:
      return "server->NAT";
    case Segment::kNatToClients:
      return "NAT->clients";
    case Segment::kClientsToNat:
      return "clients->NAT";
    case Segment::kNatToServer:
      return "NAT->server";
  }
  return "?";
}

DeviceStats::DeviceStats(double interval)
    : series_{stats::TimeSeries(0.0, interval), stats::TimeSeries(0.0, interval),
              stats::TimeSeries(0.0, interval), stats::TimeSeries(0.0, interval)} {}

void DeviceStats::Count(Segment segment, double t) {
  const auto i = static_cast<int>(segment);
  ++packets_[i];
  series_[i].Add(t, 1.0);
}

void DeviceStats::CountDrop(Segment arrival_segment, double t) {
  ++drops_[static_cast<int>(arrival_segment)];
  (void)t;
}

void DeviceStats::RecordDelay(double seconds) {
  delay_.Add(seconds);
  delay_p50_.Add(seconds);
  delay_p99_.Add(seconds);
}

std::uint64_t DeviceStats::packets(Segment s) const noexcept {
  return packets_[static_cast<int>(s)];
}

std::uint64_t DeviceStats::drops(Segment arrival_segment) const noexcept {
  return drops_[static_cast<int>(arrival_segment)];
}

const stats::TimeSeries& DeviceStats::load_series(Segment s) const noexcept {
  return series_[static_cast<int>(s)];
}

double DeviceStats::loss_rate_incoming() const noexcept {
  const auto in = packets(Segment::kClientsToNat);
  if (in == 0) return 0.0;
  const auto out = packets(Segment::kNatToServer);
  return static_cast<double>(in - out) / static_cast<double>(in);
}

double DeviceStats::loss_rate_outgoing() const noexcept {
  const auto in = packets(Segment::kServerToNat);
  if (in == 0) return 0.0;
  const auto out = packets(Segment::kNatToClients);
  return static_cast<double>(in - out) / static_cast<double>(in);
}

}  // namespace gametrace::router
