#include "router/device_stats.h"

#include <string>

namespace gametrace::router {

const char* SegmentName(Segment s) noexcept {
  switch (s) {
    case Segment::kServerToNat:
      return "server->NAT";
    case Segment::kNatToClients:
      return "NAT->clients";
    case Segment::kClientsToNat:
      return "clients->NAT";
    case Segment::kNatToServer:
      return "NAT->server";
  }
  return "?";
}

const char* SegmentSlug(Segment s) noexcept {
  switch (s) {
    case Segment::kServerToNat:
      return "server_to_nat";
    case Segment::kNatToClients:
      return "nat_to_clients";
    case Segment::kClientsToNat:
      return "clients_to_nat";
    case Segment::kNatToServer:
      return "nat_to_server";
  }
  return "unknown";
}

DeviceStats::DeviceStats(double interval)
    : series_{stats::TimeSeries(0.0, interval), stats::TimeSeries(0.0, interval),
              stats::TimeSeries(0.0, interval), stats::TimeSeries(0.0, interval)} {
  BindCounters();
}

DeviceStats::DeviceStats(const DeviceStats& other)
    : metrics_(other.metrics_),
      series_{other.series_[0], other.series_[1], other.series_[2], other.series_[3]},
      delay_(other.delay_),
      delay_p50_(other.delay_p50_),
      delay_p99_(other.delay_p99_) {
  BindCounters();
}

DeviceStats& DeviceStats::operator=(const DeviceStats& other) {
  if (this == &other) return *this;
  metrics_ = other.metrics_;
  for (int i = 0; i < kSegmentCount; ++i) series_[i] = other.series_[i];
  delay_ = other.delay_;
  delay_p50_ = other.delay_p50_;
  delay_p99_ = other.delay_p99_;
  BindCounters();
  return *this;
}

void DeviceStats::BindCounters() {
  for (int i = 0; i < kSegmentCount; ++i) {
    const std::string base = std::string("nat.") + SegmentSlug(static_cast<Segment>(i));
    packets_[i] = &metrics_.counter(base + ".packets");
    drops_[i] = &metrics_.counter(base + ".drops");
  }
  offered_ = &metrics_.counter("nat.device.packets");
  dropped_ = &metrics_.counter("nat.device.drops");
}

void DeviceStats::Count(Segment segment, double t) {
  const auto i = static_cast<int>(segment);
  packets_[i]->Add();
  if (segment == Segment::kServerToNat || segment == Segment::kClientsToNat) offered_->Add();
  series_[i].Add(t, 1.0);
}

void DeviceStats::CountDrop(Segment arrival_segment, double t) {
  drops_[static_cast<int>(arrival_segment)]->Add();
  dropped_->Add();
  (void)t;
}

void DeviceStats::RecordDelay(double seconds) {
  delay_.Add(seconds);
  delay_p50_.Add(seconds);
  delay_p99_.Add(seconds);
}

std::uint64_t DeviceStats::packets(Segment s) const noexcept {
  return packets_[static_cast<int>(s)]->value();
}

std::uint64_t DeviceStats::drops(Segment arrival_segment) const noexcept {
  return drops_[static_cast<int>(arrival_segment)]->value();
}

const stats::TimeSeries& DeviceStats::load_series(Segment s) const noexcept {
  return series_[static_cast<int>(s)];
}

double DeviceStats::loss_rate_incoming() const noexcept {
  const auto in = packets(Segment::kClientsToNat);
  if (in == 0) return 0.0;
  const auto out = packets(Segment::kNatToServer);
  return static_cast<double>(in - out) / static_cast<double>(in);
}

double DeviceStats::loss_rate_outgoing() const noexcept {
  const auto in = packets(Segment::kServerToNat);
  if (in == 0) return 0.0;
  const auto out = packets(Segment::kNatToClients);
  return static_cast<double>(in - out) / static_cast<double>(in);
}

}  // namespace gametrace::router
