#include "router/fifo_queue.h"

#include <algorithm>
#include <stdexcept>

namespace gametrace::router {

FifoQueue::FifoQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("FifoQueue: capacity must be positive");
}

bool FifoQueue::TryPush(QueuedPacket packet) {
  occupancy_.Add(static_cast<double>(queue_.size()));
  if (full()) {
    ++drops_;
    return false;
  }
  queue_.push_back(std::move(packet));
  ++pushes_;
  max_occupancy_ = std::max(max_occupancy_, queue_.size());
  return true;
}

std::optional<QueuedPacket> FifoQueue::Pop() {
  if (queue_.empty()) return std::nullopt;
  QueuedPacket out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

}  // namespace gametrace::router
