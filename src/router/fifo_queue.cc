#include "router/fifo_queue.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/check.h"

namespace gametrace::router {

FifoQueue::FifoQueue(std::size_t capacity) : capacity_(capacity) {
  GT_CHECK_NE(capacity, 0) << "FifoQueue: capacity must be positive";
}

void FifoQueue::BindMetrics(obs::MetricsRegistry& registry, std::string_view prefix) {
  const std::string base(prefix);
  metric_pushes_ = &registry.counter(base + ".pushes");
  metric_drops_ = &registry.counter(base + ".drops");
  metric_high_water_ = &registry.gauge(base + ".high_water", obs::Gauge::MergeMode::kMax);
  // Carry over anything counted before the binding existed.
  metric_pushes_->Add(pushes_);
  metric_drops_->Add(drops_);
  metric_high_water_->SetMax(static_cast<double>(max_occupancy_));
}

bool FifoQueue::TryPush(QueuedPacket packet) {
  occupancy_.Add(static_cast<double>(queue_.size()));
  if (full()) {
    ++drops_;
    if (metric_drops_ != nullptr) metric_drops_->Add();
    return false;
  }
  queue_.push_back(std::move(packet));
  ++pushes_;
  if (metric_pushes_ != nullptr) metric_pushes_->Add();
  max_occupancy_ = std::max(max_occupancy_, queue_.size());
  if (metric_high_water_ != nullptr) {
    metric_high_water_->SetMax(static_cast<double>(max_occupancy_));
  }
  GT_DCHECK_LE(queue_.size(), capacity_) << "FifoQueue: occupancy exceeds capacity";
  GT_DCHECK_LE(max_occupancy_, capacity_) << "FifoQueue: recorded high-water mark is impossible";
  return true;
}

std::optional<QueuedPacket> FifoQueue::Pop() {
  if (queue_.empty()) return std::nullopt;
  QueuedPacket out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

}  // namespace gametrace::router
