#include "router/fifo_queue.h"

#include <algorithm>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::router {

FifoQueue::FifoQueue(std::size_t capacity) : capacity_(capacity) {
  GT_CHECK_NE(capacity, 0) << "FifoQueue: capacity must be positive";
}

bool FifoQueue::TryPush(QueuedPacket packet) {
  occupancy_.Add(static_cast<double>(queue_.size()));
  if (full()) {
    ++drops_;
    return false;
  }
  queue_.push_back(std::move(packet));
  ++pushes_;
  max_occupancy_ = std::max(max_occupancy_, queue_.size());
  GT_DCHECK_LE(queue_.size(), capacity_) << "FifoQueue: occupancy exceeds capacity";
  GT_DCHECK_LE(max_occupancy_, capacity_) << "FifoQueue: recorded high-water mark is impossible";
  return true;
}

std::optional<QueuedPacket> FifoQueue::Pop() {
  if (queue_.empty()) return std::nullopt;
  QueuedPacket out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

}  // namespace gametrace::router
