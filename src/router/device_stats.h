// Per-segment accounting for the NAT experiment (paper Table IV and
// Figures 14-15): packets counted on each of the four observation points
// around the device, plus queueing-delay statistics.
//
// Counts are stored in an embedded obs::MetricsRegistry (counters
// "nat.<segment>.packets" / "nat.<segment>.drops"), so a NAT run's device
// accounting shows up in --metrics-out exports and merges like any other
// registry; the packets()/drops() accessors below are thin reads over
// cached counter references.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "stats/quantile.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"

namespace gametrace::router {

// The four trace points of the paper's NAT experiment.
enum class Segment : std::uint8_t {
  kServerToNat = 0,   // outgoing traffic entering the device (LAN port)
  kNatToClients = 1,  // outgoing traffic leaving the device
  kClientsToNat = 2,  // incoming traffic entering the device (WAN port)
  kNatToServer = 3,   // incoming traffic leaving the device
};

inline constexpr int kSegmentCount = 4;

[[nodiscard]] const char* SegmentName(Segment s) noexcept;
// Metric-name-safe form ("server_to_nat", ...), used as the registry key
// infix: "nat.<slug>.packets".
[[nodiscard]] const char* SegmentSlug(Segment s) noexcept;

class DeviceStats {
 public:
  // `interval` is the bin width of the per-segment load series (the paper
  // plots per-second loads in Figs 14-15).
  explicit DeviceStats(double interval = 1.0);

  // Result structs copy DeviceStats by value; the cached counter pointers
  // must re-bind into the copied registry, hence the custom copies.
  DeviceStats(const DeviceStats& other);
  DeviceStats& operator=(const DeviceStats& other);

  void Count(Segment segment, double t);
  void CountDrop(Segment arrival_segment, double t);
  void RecordDelay(double seconds);

  [[nodiscard]] std::uint64_t packets(Segment s) const noexcept;
  [[nodiscard]] std::uint64_t drops(Segment arrival_segment) const noexcept;
  [[nodiscard]] const stats::TimeSeries& load_series(Segment s) const noexcept;

  // Table IV loss rates: fraction of packets entering on a segment that
  // never left the device.
  [[nodiscard]] double loss_rate_incoming() const noexcept;  // clients->NAT->server
  [[nodiscard]] double loss_rate_outgoing() const noexcept;  // server->NAT->clients

  [[nodiscard]] const stats::RunningStats& delay() const noexcept { return delay_; }
  [[nodiscard]] double delay_p50() const noexcept { return delay_p50_.Value(); }
  [[nodiscard]] double delay_p99() const noexcept { return delay_p99_.Value(); }

  // The backing registry (segment counters plus anything bound into it,
  // e.g. the NAT device's queue instruments). Mutable access exists so
  // NatDevice can register its queues alongside the segment counters.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  void BindCounters();

  obs::MetricsRegistry metrics_;
  obs::Counter* packets_[kSegmentCount] = {};
  obs::Counter* drops_[kSegmentCount] = {};
  // Device-wide totals: "nat.device.packets" counts everything *offered*
  // to the device (the two entry segments - the pps axis of Table IV, and
  // what the meltdown SLO rule watches); "nat.device.drops" counts every
  // drop regardless of arrival segment.
  obs::Counter* offered_ = nullptr;
  obs::Counter* dropped_ = nullptr;
  stats::TimeSeries series_[kSegmentCount];
  stats::RunningStats delay_;
  stats::P2Quantile delay_p50_{0.50};
  stats::P2Quantile delay_p99_{0.99};
};

}  // namespace gametrace::router
