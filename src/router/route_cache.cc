#include "router/route_cache.h"

#include <algorithm>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::router {

namespace {
// EWMA weight for the per-entry mean packet size.
constexpr double kSizeAlpha = 0.125;
// Victim candidates examined from the LRU tail by the size-preferential
// policy.
constexpr int kVictimCandidates = 4;
// Ghost entries live for this many cache accesses.
constexpr std::uint64_t kGhostWindow = 4096;
}  // namespace

std::string_view PolicyName(CachePolicy policy) noexcept {
  switch (policy) {
    case CachePolicy::kLru:
      return "LRU";
    case CachePolicy::kLfu:
      return "LFU";
    case CachePolicy::kSmallPacketPreferential:
      return "small-packet-preferential";
    case CachePolicy::kFrequencyPreferential:
      return "frequency-preferential";
  }
  return "?";
}

RouteCache::RouteCache(std::size_t capacity, CachePolicy policy)
    : capacity_(capacity), policy_(policy) {
  GT_CHECK_NE(capacity, 0) << "RouteCache: capacity must be positive";
}

double RouteCache::hit_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
}

bool RouteCache::Access(std::uint32_t dst_ip, std::uint16_t packet_bytes) {
  ++access_counter_;
  const auto it = entries_.find(dst_ip);
  if (it != entries_.end()) {
    ++hits_;
    Touch(dst_ip, it->second, packet_bytes);
    return true;
  }

  ++misses_;
  if (policy_ == CachePolicy::kFrequencyPreferential) {
    const auto ghost_it = ghost_.find(dst_ip);
    const bool seen_recently =
        ghost_it != ghost_.end() && access_counter_ - ghost_it->second <= kGhostWindow;
    if (!seen_recently) {
      ghost_[dst_ip] = access_counter_;
      // Opportunistic ghost-list trim to bound memory.
      if (ghost_.size() > 4 * capacity_ + 1024) {
        std::erase_if(ghost_, [this](const auto& kv) {
          return access_counter_ - kv.second > kGhostWindow;
        });
      }
      return false;  // first miss: not admitted
    }
    ghost_.erase(ghost_it);
  }
  Admit(dst_ip, packet_bytes);
  return false;
}

void RouteCache::Touch(std::uint32_t key, Entry& entry, std::uint16_t bytes) {
  ++entry.frequency;
  entry.mean_bytes += kSizeAlpha * (static_cast<double>(bytes) - entry.mean_bytes);
  lru_.erase(entry.lru_pos);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
}

void RouteCache::Admit(std::uint32_t key, std::uint16_t bytes) {
  if (entries_.size() >= capacity_) EvictOne();
  lru_.push_front(key);
  Entry entry;
  entry.lru_pos = lru_.begin();
  entry.frequency = 1;
  entry.mean_bytes = static_cast<double>(bytes);
  entries_.emplace(key, entry);
}

void RouteCache::EvictOne() {
  switch (policy_) {
    case CachePolicy::kLru:
    case CachePolicy::kFrequencyPreferential: {
      const std::uint32_t victim = lru_.back();
      lru_.pop_back();
      entries_.erase(victim);
      break;
    }
    case CachePolicy::kLfu: {
      auto victim = entries_.begin();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.frequency < victim->second.frequency) victim = it;
      }
      lru_.erase(victim->second.lru_pos);
      entries_.erase(victim);
      break;
    }
    case CachePolicy::kSmallPacketPreferential: {
      // Examine the last kVictimCandidates LRU entries; evict the one whose
      // flow carries the largest packets (web-like), keeping game routes.
      auto candidate = lru_.rbegin();
      std::uint32_t victim = *candidate;
      double victim_bytes = entries_.at(victim).mean_bytes;
      for (int i = 1; i < kVictimCandidates && std::next(candidate) != lru_.rend(); ++i) {
        ++candidate;
        const double mean = entries_.at(*candidate).mean_bytes;
        if (mean > victim_bytes) {
          victim = *candidate;
          victim_bytes = mean;
        }
      }
      lru_.erase(entries_.at(victim).lru_pos);
      entries_.erase(victim);
      break;
    }
  }
}

void RouteCache::Clear() {
  entries_.clear();
  lru_.clear();
  ghost_.clear();
  hits_ = 0;
  misses_ = 0;
  access_counter_ = 0;
}

}  // namespace gametrace::router
