// Multi-hop device chains.
//
// The paper's provisioning warning extends past the first box: "even
// mid-range routers or firewalls within several hops of large hosted
// on-line game servers will need to be carefully provisioned to minimize
// both the loss and delay induced by routing extremely small packets."
// DeviceChain strings store-and-forward devices between the server and
// its clients so loss compounding and per-hop delay accumulation can be
// measured directly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "router/nat_device.h"
#include "stats/running_stats.h"
#include "trace/capture.h"

namespace gametrace::router {

class DeviceChain {
 public:
  struct Config {
    std::vector<NatDevice::Config> hops;  // hop 0 is nearest the server
    double link_delay = 0.0005;           // propagation between hops, seconds
  };

  DeviceChain(sim::Simulator& simulator, const Config& config);

  DeviceChain(const DeviceChain&) = delete;
  DeviceChain& operator=(const DeviceChain&) = delete;

  // Starts every hop's internal schedule.
  void Start();

  // Sink that injects each record at the correct edge (outbound packets
  // enter hop 0, inbound packets enter the last hop) at the record's own
  // timestamp.
  [[nodiscard]] trace::CaptureSink& injector() noexcept { return injector_; }

  [[nodiscard]] std::size_t hop_count() const noexcept { return devices_.size(); }
  [[nodiscard]] const NatDevice& hop(std::size_t i) const { return *devices_.at(i); }

  struct EndToEnd {
    std::uint64_t sent_out = 0;
    std::uint64_t sent_in = 0;
    std::uint64_t delivered_out = 0;  // reached the clients
    std::uint64_t delivered_in = 0;   // reached the server
    stats::RunningStats delay_out;    // emission -> final exit, seconds
    stats::RunningStats delay_in;

    [[nodiscard]] double loss_rate_out() const noexcept {
      return sent_out > 0
                 ? 1.0 - static_cast<double>(delivered_out) / static_cast<double>(sent_out)
                 : 0.0;
    }
    [[nodiscard]] double loss_rate_in() const noexcept {
      return sent_in > 0
                 ? 1.0 - static_cast<double>(delivered_in) / static_cast<double>(sent_in)
                 : 0.0;
    }
  };

  [[nodiscard]] const EndToEnd& end_to_end() const noexcept { return end_to_end_; }

 private:
  class InjectorSink final : public trace::CaptureSink {
   public:
    explicit InjectorSink(DeviceChain& chain) : chain_(&chain) {}
    void OnPacket(const net::PacketRecord& record) override;

   private:
    DeviceChain* chain_;
  };

  void Forward(const net::PacketRecord& record, std::size_t from_hop);
  void FinalDelivery(const net::PacketRecord& record);

  sim::Simulator* simulator_;
  double link_delay_;
  std::vector<std::unique_ptr<NatDevice>> devices_;
  InjectorSink injector_;
  EndToEnd end_to_end_;
};

}  // namespace gametrace::router
