// Route cache with pluggable replacement/admission policies.
//
// Explores the paper's section IV-B proposal: "preferential route caching
// strategies based on packet size or packet frequency may provide
// significant improvements in packet throughput". Four policies:
//
//   kLru                    - classic: admit always, evict least recently used.
//   kLfu                    - admit always, evict least frequently used.
//   kSmallPacketPreferential- size-aware LRU: eviction prefers the victim
//                             with the largest mean packet size among the
//                             least-recent candidates, protecting game
//                             flows (tiny packets, huge packet counts).
//   kFrequencyPreferential  - admission control: a destination enters the
//                             cache only on its second miss within the
//                             ghost window, so one-shot web flows cannot
//                             flush long-lived game routes.
#pragma once

#include <cstdint>
#include <list>
#include <string_view>
#include <unordered_map>

namespace gametrace::router {

enum class CachePolicy : std::uint8_t {
  kLru = 0,
  kLfu = 1,
  kSmallPacketPreferential = 2,
  kFrequencyPreferential = 3,
};

[[nodiscard]] std::string_view PolicyName(CachePolicy policy) noexcept;

class RouteCache {
 public:
  RouteCache(std::size_t capacity, CachePolicy policy);

  // One packet headed for `dst_ip` with `packet_bytes` of payload.
  // Returns true on a cache hit. On a miss the destination is (possibly)
  // admitted per the policy.
  bool Access(std::uint32_t dst_ip, std::uint16_t packet_bytes);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double hit_rate() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] CachePolicy policy() const noexcept { return policy_; }

  [[nodiscard]] bool Contains(std::uint32_t dst_ip) const noexcept {
    return entries_.contains(dst_ip);
  }

  void Clear();

 private:
  struct Entry {
    std::list<std::uint32_t>::iterator lru_pos;
    std::uint64_t frequency = 0;
    double mean_bytes = 0.0;  // EWMA of packet sizes through this route
  };

  void Touch(std::uint32_t key, Entry& entry, std::uint16_t bytes);
  void Admit(std::uint32_t key, std::uint16_t bytes);
  void EvictOne();

  std::size_t capacity_;
  CachePolicy policy_;
  std::unordered_map<std::uint32_t, Entry> entries_;
  std::list<std::uint32_t> lru_;  // front = most recent
  // Ghost list for kFrequencyPreferential: recently-missed keys.
  std::unordered_map<std::uint32_t, std::uint64_t> ghost_;
  std::uint64_t access_counter_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace gametrace::router
