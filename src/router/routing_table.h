// Longest-prefix-match routing table (binary trie).
//
// The substrate for the paper's section IV-B observation that "preferential
// route caching strategies based on packet size or packet frequency may
// provide significant improvements": RouteCache sits in front of this
// table, and the full lookup walk is the miss penalty being avoided.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ip.h"

namespace gametrace::router {

class RoutingTable {
 public:
  RoutingTable();

  // Inserts or replaces the route for `prefix`.
  void Insert(const net::Ipv4Prefix& prefix, std::uint32_t next_hop);

  // Longest-prefix-match lookup; nullopt when no route (not even a default)
  // covers the address.
  [[nodiscard]] std::optional<std::uint32_t> Lookup(net::Ipv4Address address) const;

  // Exact-prefix lookup (no LPM fallback).
  [[nodiscard]] std::optional<std::uint32_t> Exact(const net::Ipv4Prefix& prefix) const;

  // Removes the route for exactly `prefix`; returns false if absent.
  // Trie nodes are not reclaimed (bounded by total inserts, as in real
  // FIB implementations that garbage-collect offline).
  bool Remove(const net::Ipv4Prefix& prefix);

  [[nodiscard]] std::size_t size() const noexcept { return routes_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  // Number of trie nodes visited by Lookup(address) - the "work" a route
  // cache hit saves.
  [[nodiscard]] std::size_t LookupCost(net::Ipv4Address address) const noexcept;

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    bool has_route = false;
    std::uint32_t next_hop = 0;
  };

  [[nodiscard]] std::int32_t FindNode(const net::Ipv4Prefix& prefix) const noexcept;

  std::vector<Node> nodes_;
  std::size_t routes_ = 0;
};

}  // namespace gametrace::router
