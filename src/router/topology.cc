#include "router/topology.h"

#include <algorithm>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::router {

DeviceChain::DeviceChain(sim::Simulator& simulator, const Config& config)
    : simulator_(&simulator), link_delay_(config.link_delay), injector_(*this) {
  GT_CHECK(!config.hops.empty()) << "DeviceChain: need at least one hop";
  GT_CHECK_GE(config.link_delay, 0.0) << "DeviceChain: negative link delay";
  devices_.reserve(config.hops.size());
  for (std::size_t i = 0; i < config.hops.size(); ++i) {
    devices_.push_back(std::make_unique<NatDevice>(simulator, config.hops[i]));
    devices_.back()->SetDeliverCallback(
        [this, i](const net::PacketRecord& record, Segment) { Forward(record, i); });
  }
}

void DeviceChain::Start() {
  for (auto& device : devices_) device->Start();
}

void DeviceChain::InjectorSink::OnPacket(const net::PacketRecord& record) {
  auto& chain = *chain_;
  const bool outbound = record.direction == net::Direction::kServerToClient;
  if (outbound) {
    ++chain.end_to_end_.sent_out;
  } else {
    ++chain.end_to_end_.sent_in;
  }
  NatDevice* edge = outbound ? chain.devices_.front().get() : chain.devices_.back().get();
  const double at = std::max(chain.simulator_->Now(), record.timestamp);
  chain.simulator_->At(at, [edge, record] { edge->OnArrival(record); });
}

void DeviceChain::Forward(const net::PacketRecord& record, std::size_t from_hop) {
  const bool outbound = record.direction == net::Direction::kServerToClient;
  const bool is_last = outbound ? from_hop + 1 == devices_.size() : from_hop == 0;
  if (is_last) {
    FinalDelivery(record);
    return;
  }
  NatDevice* next =
      outbound ? devices_[from_hop + 1].get() : devices_[from_hop - 1].get();
  simulator_->After(link_delay_, [next, record] { next->OnArrival(record); });
}

void DeviceChain::FinalDelivery(const net::PacketRecord& record) {
  const double delay = simulator_->Now() - record.timestamp;
  if (record.direction == net::Direction::kServerToClient) {
    ++end_to_end_.delivered_out;
    end_to_end_.delay_out.Add(delay);
  } else {
    ++end_to_end_.delivered_in;
    end_to_end_.delay_in.Add(delay);
  }
}

}  // namespace gametrace::router
