#include "router/lookup_engine.h"

#include <stdexcept>

#include "sim/random.h"

#include "core/check.h"

namespace gametrace::router {

LookupEngine::LookupEngine(double mean_capacity_pps, double jitter_fraction, sim::Rng rng)
    : capacity_pps_(mean_capacity_pps), jitter_(jitter_fraction), rng_(rng) {
  GT_CHECK(mean_capacity_pps > 0.0) << "LookupEngine: capacity must be positive";
  GT_CHECK(jitter_fraction >= 0.0 && jitter_fraction < 1.0)
      << "LookupEngine: jitter must be in [0, 1)";
}

double LookupEngine::DrawServiceTime() {
  const double factor = 1.0 + jitter_ * (2.0 * rng_.NextDouble() - 1.0);
  return factor / capacity_pps_;
}

}  // namespace gametrace::router
