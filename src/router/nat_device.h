// Model of a COTS NAT/router appliance (the paper's SMC7004AWBR Barricade).
//
// The paper demonstrates that a single game server at ~800 kbps overwhelms
// a device "designed to route at significantly higher rates" because the
// bottleneck is per-packet route lookup (1000-1500 pps), not link speed.
// The model:
//
//   * one forwarding CPU drawing a per-packet service time around
//     1/capacity (LookupEngine);
//   * two shallow input queues - a deeper LAN-side buffer (the server's
//     broadcast bursts arrive back-to-back and are DMA-queued) and a
//     shallow WAN-side receive ring;
//   * strict LAN-first service: a 50 ms broadcast burst monopolises the
//     CPU for ~15 ms, starving the WAN ring - which is why *incoming*
//     packets are lost as "a result of individual server packet bursts"
//     (paper section IV-A) even though the outgoing load is burstier;
//   * episodic livelock: under sustained small-packet overload the device
//     periodically stops servicing the WAN side for O(1 s) (interrupt /
//     housekeeping livelock typical of consumer gear), producing the
//     frequent NAT->server drop-outs of Figure 14(b);
//   * a NAT translation table mapping client endpoints to external ports.
//
// Loss callbacks let an experiment wire the game-freeze feedback loop: the
// server misses client updates and briefly stops broadcasting
// (CsServer::InduceStall), which is what correlates the Figure 15 dropouts
// with incoming loss.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/packet.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "router/device_stats.h"
#include "router/fifo_queue.h"
#include "router/lookup_engine.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "trace/capture.h"

namespace gametrace::router {

class NatDevice {
 public:
  struct Config {
    std::size_t lan_buffer = 24;  // packets, server-side input queue
    std::size_t wan_buffer = 16;  // packets, Internet-side receive ring
    double mean_capacity_pps = 1250.0;  // "listed capacity of 1000-1500 pps"
    double service_jitter = 0.25;

    // Livelock episodes: every ~Exp(episode_mean_interval) the device stops
    // servicing the WAN queue for U(min,max) seconds; for the first
    // full_stall seconds of an episode nothing is serviced at all.
    double episode_mean_interval = 58.0;
    double episode_min_duration = 0.5;
    double episode_max_duration = 1.4;
    double episode_full_stall = 0.50;

    double stats_interval = 1.0;  // bin width of the Fig 14/15 series
    std::uint64_t seed = 7;
  };

  using DeliverFn = std::function<void(const net::PacketRecord&, Segment delivered_on)>;
  using LossFn = std::function<void(const net::PacketRecord&, Segment arrival_segment)>;

  NatDevice(sim::Simulator& simulator, const Config& config);

  NatDevice(const NatDevice&) = delete;
  NatDevice& operator=(const NatDevice&) = delete;

  void SetDeliverCallback(DeliverFn fn) { deliver_ = std::move(fn); }
  void SetLossCallback(LossFn fn) { on_loss_ = std::move(fn); }

  // Must be called once before injecting traffic; starts the livelock
  // schedule.
  void Start();

  // A packet reaches the device at the current simulation time.
  void OnArrival(const net::PacketRecord& record);

  // A sink that schedules OnArrival at each record's own timestamp - the
  // glue between CsServer's emission and the device (also re-orders the
  // within-tick emission skew).
  [[nodiscard]] trace::CaptureSink& injector() noexcept { return injector_; }

  [[nodiscard]] const DeviceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FifoQueue& lan_queue() const noexcept { return lan_q_; }
  [[nodiscard]] const FifoQueue& wan_queue() const noexcept { return wan_q_; }
  [[nodiscard]] std::size_t nat_table_size() const noexcept { return nat_table_.size(); }
  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] int livelock_episodes() const noexcept { return episodes_; }

 private:
  class InjectorSink final : public trace::CaptureSink {
   public:
    explicit InjectorSink(NatDevice& device) : device_(&device) {}
    void OnPacket(const net::PacketRecord& record) override;

   private:
    NatDevice* device_;
  };

  void ScheduleNextEpisode();
  void TryBeginService();
  void CompleteService(QueuedPacket packet);
  void Drop(const net::PacketRecord& record, Segment arrival_segment);

  sim::Simulator* simulator_;
  Config config_;
  sim::Rng rng_;
  LookupEngine engine_;
  FifoQueue lan_q_;
  FifoQueue wan_q_;
  DeviceStats stats_;
  InjectorSink injector_;
  DeliverFn deliver_;
  LossFn on_loss_;
  std::unordered_map<std::uint64_t, std::uint16_t> nat_table_;  // endpoint -> external port
  std::uint16_t next_external_port_ = 1024;
  bool busy_ = false;
  bool started_ = false;
  double wan_starved_until_ = 0.0;
  double full_stall_until_ = 0.0;
  int episodes_ = 0;
  std::uint64_t wake_event_ = 0;
  bool wake_pending_ = false;

  // Ambient observability captured at construction: drop/livelock instants
  // go to the trace log ("nat" category), episode counts to the ambient
  // registry. Both null outside a binding.
  obs::TraceLog* trace_ = nullptr;
  obs::Counter* episodes_counter_ = nullptr;
};

}  // namespace gametrace::router
