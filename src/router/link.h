// Point-to-point link model: serialisation + propagation delay.
#pragma once

#include <cstdint>

namespace gametrace::router {

class Link {
 public:
  // bandwidth_bps must be positive; propagation_delay in seconds, >= 0.
  Link(double bandwidth_bps, double propagation_delay_seconds);

  [[nodiscard]] double bandwidth_bps() const noexcept { return bandwidth_bps_; }
  [[nodiscard]] double propagation_delay() const noexcept { return propagation_; }

  // Time to clock `wire_bytes` onto the link.
  [[nodiscard]] double TransmitDelay(std::uint64_t wire_bytes) const noexcept;

  // Serialisation + propagation for one packet.
  [[nodiscard]] double TotalDelay(std::uint64_t wire_bytes) const noexcept;

  // Earliest time the link can begin transmitting a new frame, given the
  // previous transmission started at `prev_start` with `prev_wire_bytes`.
  // Models back-to-back frames in a broadcast burst.
  [[nodiscard]] double NextFreeTime(double prev_start,
                                    std::uint64_t prev_wire_bytes) const noexcept;

 private:
  double bandwidth_bps_;
  double propagation_;
};

}  // namespace gametrace::router
