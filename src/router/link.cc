#include "router/link.h"

#include <stdexcept>

#include "core/check.h"

namespace gametrace::router {

Link::Link(double bandwidth_bps, double propagation_delay_seconds)
    : bandwidth_bps_(bandwidth_bps), propagation_(propagation_delay_seconds) {
  GT_CHECK(bandwidth_bps > 0.0) << "Link: bandwidth must be positive";
  GT_CHECK_GE(propagation_delay_seconds, 0.0) << "Link: negative propagation delay";
}

double Link::TransmitDelay(std::uint64_t wire_bytes) const noexcept {
  return static_cast<double>(wire_bytes) * 8.0 / bandwidth_bps_;
}

double Link::TotalDelay(std::uint64_t wire_bytes) const noexcept {
  return TransmitDelay(wire_bytes) + propagation_;
}

double Link::NextFreeTime(double prev_start, std::uint64_t prev_wire_bytes) const noexcept {
  return prev_start + TransmitDelay(prev_wire_bytes);
}

}  // namespace gametrace::router
