#include "stats/rs_hurst.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::stats {

LineFit RsPlot::Fit() const {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const auto& p : points) {
    xs.push_back(p.log10_n);
    ys.push_back(p.log10_rs);
  }
  return FitLine(xs, ys);
}

double RsPlot::HurstEstimate() const { return Fit().slope; }

RsPlot ComputeRescaledRange(const TimeSeries& series, const RsOptions& options) {
  GT_CHECK_GT(options.ratio, 1.0) << "ComputeRescaledRange: ratio <= 1";
  GT_CHECK_GE(series.size(), options.min_n * options.min_blocks)
      << "ComputeRescaledRange: series too short";
  GT_CHECK_GT(series.Variance(), 0.0) << "ComputeRescaledRange: zero variance";
  const auto& xs = series.values();

  RsPlot plot;
  std::size_t n = options.min_n;
  while (series.size() / n >= options.min_blocks) {
    double rs_sum = 0.0;
    std::size_t rs_count = 0;
    for (std::size_t block = 0; block + 1 <= series.size() / n; ++block) {
      const std::size_t begin = block * n;
      // Block mean.
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += xs[begin + i];
      mean /= static_cast<double>(n);
      // Range of the mean-adjusted cumulative sum; block stddev.
      double cum = 0.0;
      double lo = 0.0;
      double hi = 0.0;
      double var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double dev = xs[begin + i] - mean;
        cum += dev;
        lo = std::min(lo, cum);
        hi = std::max(hi, cum);
        var += dev * dev;
      }
      const double stddev = std::sqrt(var / static_cast<double>(n));
      if (stddev > 0.0) {
        rs_sum += (hi - lo) / stddev;
        ++rs_count;
      }
    }
    if (rs_count > 0) {
      RsPoint p;
      p.n = n;
      p.mean_rs = rs_sum / static_cast<double>(rs_count);
      p.log10_n = std::log10(static_cast<double>(n));
      p.log10_rs = p.mean_rs > 0.0 ? std::log10(p.mean_rs) : 0.0;
      plot.points.push_back(p);
    }
    const auto next = static_cast<std::size_t>(std::ceil(static_cast<double>(n) * options.ratio));
    n = next > n ? next : n + 1;
  }
  GT_CHECK_GE(plot.points.size(), 2) << "ComputeRescaledRange: not enough block sizes";
  return plot;
}

}  // namespace gametrace::stats
