#include "stats/variance_time.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::stats {

std::size_t VarianceTimePlot::PointsInRegion(double min_interval_seconds,
                                             double max_interval_seconds) const noexcept {
  std::size_t n = 0;
  for (const auto& p : points) {
    if (p.interval_seconds >= min_interval_seconds && p.interval_seconds <= max_interval_seconds) {
      ++n;
    }
  }
  return n;
}

LineFit VarianceTimePlot::FitRegion(double min_interval_seconds,
                                    double max_interval_seconds) const {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& p : points) {
    if (p.interval_seconds >= min_interval_seconds &&
        p.interval_seconds <= max_interval_seconds) {
      xs.push_back(p.log10_m);
      ys.push_back(p.log10_normalized_variance);
    }
  }
  return FitLine(xs, ys);
}

double VarianceTimePlot::HurstEstimate(double min_interval_seconds,
                                       double max_interval_seconds) const {
  const LineFit fit = FitRegion(min_interval_seconds, max_interval_seconds);
  const double beta = std::fabs(fit.slope);
  return 1.0 - beta / 2.0;
}

VarianceTimePlot ComputeVarianceTime(const TimeSeries& base,
                                     const VarianceTimeOptions& options) {
  GT_CHECK_GT(options.ratio, 1.0) << "ComputeVarianceTime: ratio must exceed 1";
  GT_CHECK_GE(base.size(), options.min_blocks) << "ComputeVarianceTime: series too short";

  VarianceTimePlot plot;
  plot.base_interval = base.interval();
  plot.base_variance = base.Variance();
  GT_CHECK_GT(plot.base_variance, 0.0) << "ComputeVarianceTime: series has zero variance";

  std::size_t m = 1;
  while (base.size() / m >= options.min_blocks) {
    const TimeSeries agg = base.AggregateMean(m);
    VariancePoint p;
    p.m = m;
    p.interval_seconds = base.interval() * static_cast<double>(m);
    p.normalized_variance = agg.Variance() / plot.base_variance;
    p.log10_m = std::log10(static_cast<double>(m));
    // Zero variance at some aggregation level (e.g. perfectly constant load)
    // would be -inf on the log axis; clamp far below any real value instead.
    p.log10_normalized_variance =
        p.normalized_variance > 0.0 ? std::log10(p.normalized_variance) : -12.0;
    plot.points.push_back(p);

    const auto next = static_cast<std::size_t>(
        std::ceil(static_cast<double>(m) * options.ratio));
    m = next > m ? next : m + 1;
  }
  return plot;
}

HurstRegions EstimateHurstRegions(const VarianceTimePlot& plot,
                                  double small_mid_boundary,
                                  double mid_large_boundary) {
  HurstRegions regions;
  regions.small_scale = plot.HurstEstimate(0.0, small_mid_boundary);
  regions.mid_scale = plot.HurstEstimate(small_mid_boundary, mid_large_boundary);
  // The large-scale region may be empty for short traces; report H = 0.5
  // (the paper's asymptote) when there are not enough points to fit.
  const double inf = std::numeric_limits<double>::infinity();
  regions.large_scale = plot.PointsInRegion(mid_large_boundary, inf) >= 2
                            ? plot.HurstEstimate(mid_large_boundary, inf)
                            : 0.5;
  return regions;
}

}  // namespace gametrace::stats
