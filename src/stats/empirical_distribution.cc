#include "stats/empirical_distribution.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "stats/histogram.h"

#include "core/check.h"

namespace gametrace::stats {

void EmpiricalDistribution::Add(double value, double weight) {
  GT_CHECK(weight > 0.0) << "EmpiricalDistribution: weight must be > 0";
  values_.push_back(value);
  weights_.push_back(weight);
  total_weight_ += weight;
  dirty_ = true;
}

void EmpiricalDistribution::AddColumn(std::span<const std::uint16_t> xs) {
  if (xs.empty()) return;
  values_.reserve(values_.size() + xs.size());
  weights_.reserve(weights_.size() + xs.size());
  for (const std::uint16_t x : xs) {
    values_.push_back(static_cast<double>(x));
    weights_.push_back(1.0);
  }
  total_weight_ += static_cast<double>(xs.size());
  dirty_ = true;
}

EmpiricalDistribution EmpiricalDistribution::FromHistogram(const Histogram& h) {
  EmpiricalDistribution d;
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    if (h.count(i) > 0) d.Add(h.bin_center(i), static_cast<double>(h.count(i)));
  }
  return d;
}

double EmpiricalDistribution::Mean() const {
  GT_CHECK(!empty()) << "EmpiricalDistribution::Mean: empty";
  double acc = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) acc += values_[i] * weights_[i];
  return acc / total_weight_;
}

double EmpiricalDistribution::Variance() const {
  const double m = Mean();
  double acc = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double d = values_[i] - m;
    acc += d * d * weights_[i];
  }
  return acc / total_weight_;
}

void EmpiricalDistribution::EnsureSorted() const {
  if (!dirty_) return;
  std::vector<std::size_t> order(values_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [this](std::size_t a, std::size_t b) { return values_[a] < values_[b]; });
  std::vector<double> v(values_.size());
  std::vector<double> w(values_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    v[i] = values_[order[i]];
    w[i] = weights_[order[i]];
  }
  values_ = std::move(v);
  weights_ = std::move(w);
  cumulative_.resize(values_.size());
  double running = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    running += weights_[i];
    cumulative_[i] = running;
  }
  dirty_ = false;
}

double EmpiricalDistribution::SampleByUniform(double u) const {
  GT_CHECK(!empty()) << "EmpiricalDistribution::SampleByUniform: empty";
  GT_CHECK(u >= 0.0 && u < 1.0) << "EmpiricalDistribution::SampleByUniform: u outside [0,1)";
  EnsureSorted();
  const double target = u * total_weight_;
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  return values_[std::min(idx, values_.size() - 1)];
}

}  // namespace gametrace::stats
