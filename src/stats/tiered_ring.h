// Multi-resolution bounded time-series ring (tiered downsampling).
//
// The unbounded TimeSeries keeps every base bin forever - fine for the
// paper's 1-week trace, fatal for the million-client fleet sweeps
// (ROADMAP item 1). TieredRing keeps a fixed window per resolution tier:
// the base tier holds recent 50 ms bins; when a base bin is evicted it
// folds into the containing 1 s bin, 1 s bins fold into 1 min bins, and
// so on (RRD-style). Each tier additionally keeps lifetime aggregates of
// every bin it has ever evicted (count / value sum / value peak), so the
// paper's burst statistics - 50 ms peak-to-mean ratio, per-minute load
// envelope - survive arbitrarily long runs in O(total capacity) memory.
//
// Bins carry (sum, count, max-of-samples); the reduction mode chooses how
// a bin reads as a value: kSum (packet counts - the paper's load series),
// kMax (high-water levels) or kMean (per-bin averages). Folding carries
// the raw triple, so every tier's value is exact for its mode, and the
// newest bin of each coarse tier is still filling (same as RRD).
//
// Determinism / merge contract: rings are time-anchored at t = 0, so two
// shards simulating the same duration advance bin-for-bin in lockstep.
// Merge GT_CHECKs identical schedule and advancement, then adds held bins
// component-wise (exact: the merged window equals the ring of the summed
// stream) and pools eviction aggregates: evicted value sums add (the
// merged mean is the aggregate-series mean), evicted peaks take the max
// over shards (the worst single-shard burst - the per-link provisioning
// question; the aggregate-series peak is not recoverable from per-shard
// state). Fixed shard-order folding makes the result bit-identical at any
// fleet worker count. An optional OnlineHurst consumes base bins as they
// evict, making self-similarity a live, mergeable signal.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "stats/online_hurst.h"

namespace gametrace::stats {

class TieredRing {
 public:
  enum class Reduction : std::uint8_t { kSum = 0, kMax = 1, kMean = 2 };

  struct TierSpec {
    double interval = 0.050;     // seconds per bin
    std::size_t capacity = 128;  // bins held before eviction
  };

  struct Options {
    // Fine to coarse; every interval must be an integer multiple (>= 2) of
    // the previous one so bins nest exactly.
    std::vector<TierSpec> tiers;
    Reduction reduction = Reduction::kSum;
    // When true, evicted base bins stream into an OnlineHurst estimator.
    bool track_hurst = false;
    std::size_t hurst_scales = 16;

    // The paper's telemetry schedule scaled to `base_interval` (the server
    // tick): base x128, then x20 (1 s at a 50 ms tick) x240, then x60
    // (1 min) x240, then x60 (1 h) x168 - one week of hourly bins.
    [[nodiscard]] static Options PaperSchedule(double base_interval = 0.050);
  };

  struct Bin {
    double sum = 0.0;
    double max = 0.0;  // max sample; 0 for an empty bin
    std::uint64_t count = 0;
  };

  // Lifetime (evicted + held) view of one tier.
  struct TierStats {
    std::uint64_t bins = 0;  // bins ever completed-or-held at this tier
    double mean = 0.0;       // mean bin value
    double peak = 0.0;       // largest bin value (per shard after a merge)
  };

  explicit TieredRing(Options options = Options::PaperSchedule());

  // Adds a sample at time t >= 0. Bins from the last held bin up to t are
  // created (zero-filled) on demand, cascading evictions into coarser
  // tiers; samples older than the base window count as dropped_late.
  void Add(double t, double value = 1.0);

  // Advances every tier as if a zero-weight sample arrived at t: closes
  // and folds intervening bins. Lets short-lived sources align their grid
  // with a common end time before a merge.
  void AdvanceTo(double t);

  // Absorbs a ring with identical options and advancement; see the header
  // comment for exactness semantics. GT_CHECK fails on mismatch.
  void Merge(const TieredRing& other);

  [[nodiscard]] std::size_t tier_count() const noexcept { return tiers_.size(); }
  [[nodiscard]] double tier_interval(std::size_t tier) const;
  [[nodiscard]] std::size_t tier_capacity(std::size_t tier) const;
  // Bins currently held in the tier's ring.
  [[nodiscard]] std::size_t tier_held(std::size_t tier) const;
  // Absolute index of the oldest held bin (bin i covers [i, i+1) * interval).
  [[nodiscard]] std::int64_t tier_first(std::size_t tier) const;
  // Bins the tier has evicted (their values live on in the aggregates).
  [[nodiscard]] std::uint64_t tier_evicted(std::size_t tier) const;

  // Value of the held bin at absolute index `index` under the reduction
  // mode. Contract: tier_first <= index < tier_first + tier_held.
  [[nodiscard]] double TierValue(std::size_t tier, std::int64_t index) const;

  // Evicted aggregates combined with the held window.
  [[nodiscard]] TierStats Stats(std::size_t tier) const;

  // The newest min(n, held) bin values, oldest first - the flight
  // recorder's per-tier sparkline tail.
  [[nodiscard]] std::vector<double> RecentValues(std::size_t tier, std::size_t n) const;

  [[nodiscard]] Reduction reduction() const noexcept { return options_.reduction; }
  [[nodiscard]] std::uint64_t dropped_late() const noexcept { return dropped_late_; }
  [[nodiscard]] const OnlineHurst* hurst() const noexcept {
    return hurst_.has_value() ? &*hurst_ : nullptr;
  }

  // True when the tier schedule, reduction mode and Hurst configuration
  // match - the re-registration and merge precondition.
  [[nodiscard]] bool SameShape(const TieredRing& other) const noexcept;

  [[nodiscard]] std::size_t MemoryBytes() const noexcept;

 private:
  struct Tier {
    double interval = 0.0;
    std::size_t capacity = 0;
    std::size_t ratio = 0;    // bins of this tier per bin of the next
    std::int64_t first = 0;   // absolute index of the oldest held bin
    std::size_t held = 0;
    std::vector<Bin> bins;    // capacity slots; slot = absolute index % capacity
    std::uint64_t evicted = 0;
    double evicted_value_sum = 0.0;
    double evicted_value_max = 0.0;
    // Incremental fold cursor: evictions march through absolute indices
    // 0, 1, 2, ..., so the containing coarse bin is tracked by counting
    // (fold_phase wraps at ratio) instead of dividing per eviction, and
    // its ring slot by a wrapping counter instead of a modulo. The coarse
    // bin is created (EnsureCovers) only on the first fold into it; the
    // coarse tier never evicts its newest bin, so the slot stays valid
    // for the remaining ratio - 1 folds.
    std::int64_t fold_index = 0;  // coarse bin receiving the next eviction
    std::size_t fold_phase = 0;   // fine bins already folded into it
    std::size_t fold_slot = 0;    // fold_index % next tier's capacity
  };

  [[nodiscard]] double BinValue(const Bin& bin) const noexcept;
  // Ensures tier `k` holds bin `index`, evicting/cascading as needed.
  Bin* EnsureCovers(std::size_t k, std::int64_t index);
  void EvictFront(std::size_t k);

  Options options_;
  std::vector<Tier> tiers_;
  std::optional<OnlineHurst> hurst_;
  std::uint64_t dropped_late_ = 0;

  // Same-bin fast path: the server emits dozens of packets per tick, all
  // landing in one base bin, so Add caches the last bin's slot and time
  // window and skips the index math while t stays inside it. Stored as a
  // slot (not a pointer) so copies stay valid; fast_hi_ < 0 means invalid.
  // AdvanceTo invalidates (it can evict the cached bin without Add seeing
  // it); Add's slow path re-caches after any eviction it causes, and Merge
  // never moves the window (lockstep contract), so both stay safe.
  double fast_lo_ = 0.0;
  double fast_hi_ = -1.0;
  std::size_t fast_slot_ = 0;
  // Absolute index of the cached bin; lets the slow path advance to the
  // immediately following bin (the tick cadence) by incrementing instead
  // of dividing t by the base interval.
  std::int64_t fast_index_ = 0;
};

}  // namespace gametrace::stats
