// Rescaled-range (R/S) Hurst estimation (Hurst 1950, the paper's ref [28]).
//
// An independent cross-check of the aggregated-variance method used for
// Figure 5: for each block size n, compute the range of the mean-adjusted
// cumulative sum within each block, rescale by the block's standard
// deviation, and average; H is the slope of log(R/S) against log(n).
#pragma once

#include <vector>

#include "stats/linear_regression.h"
#include "stats/time_series.h"

namespace gametrace::stats {

struct RsPoint {
  std::size_t n = 0;        // block size in base intervals
  double mean_rs = 0.0;     // average rescaled range over whole blocks
  double log10_n = 0.0;
  double log10_rs = 0.0;
};

struct RsPlot {
  std::vector<RsPoint> points;

  // Slope of the best-fit line through the log-log points = H.
  [[nodiscard]] double HurstEstimate() const;
  [[nodiscard]] LineFit Fit() const;
};

struct RsOptions {
  double ratio = 2.0;        // geometric block-size progression
  std::size_t min_n = 8;     // smallest block size
  std::size_t min_blocks = 4;  // keep at least this many whole blocks
};

// Computes the R/S plot of a series. Throws std::invalid_argument if the
// series is shorter than min_n * min_blocks or has zero variance.
[[nodiscard]] RsPlot ComputeRescaledRange(const TimeSeries& series,
                                          const RsOptions& options = {});

}  // namespace gametrace::stats
