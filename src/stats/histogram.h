// Fixed-bin histogram with PDF/CDF extraction.
//
// This is the workhorse behind the paper's Figure 11 (per-client bandwidth
// histogram), Figure 12 (packet-size PDFs) and Figure 13 (packet-size CDFs).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/check.h"

namespace gametrace::stats {

// Histogram over [lo, hi) with `bins` equal-width bins.
//
// Samples below `lo` land in an underflow bucket, samples at or above `hi`
// in an overflow bucket; both are reported separately so truncated plots
// (the paper truncates packet sizes at 500 B) can state what was dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  // Defined inline: the per-packet hot path of the size-distribution
  // figures.
  void Add(double x, std::uint64_t weight = 1) noexcept {
    total_ += weight;
    if (x < lo_) {
      underflow_ += weight;
      return;
    }
    if (x >= hi_) {
      overflow_ += weight;
      return;
    }
    auto bin = static_cast<std::size_t>((x - lo_) / width_);
    // Floating-point edge case: x infinitesimally below hi_ can round to
    // size().
    bin = std::min(bin, counts_.size() - 1);
    counts_[bin] += weight;
  }

  // Batch fast path: one bin lookup and one count update per same-bin run
  // of consecutive samples. Counts are integers, so the result is identical
  // to the scalar loop.
  void AddBatch(std::span<const double> xs, std::uint64_t weight = 1) noexcept;

  // Columnar kernels over a dense u16 sample column (packet sizes straight
  // from a net::PacketBatch): no 24-byte record stride, and the range tests
  // run over sequential u16 loads the compiler can unroll. Counts are
  // integral, so the result is identical to per-sample Add.
  void AddColumn(std::span<const std::uint16_t> xs) noexcept;
  // Masked variant: adds only samples whose mask byte equals `match`
  // (direction-split size histograms). mask must be at least xs.size() long.
  void AddColumn(std::span<const std::uint16_t> xs, std::span<const std::uint8_t> mask,
                 std::uint8_t match) noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    GT_CHECK_LT(bin, counts_.size()) << "Histogram::count: bin out of range";
    return counts_[bin];
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  // Total including under/overflow.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  // Total landing inside [lo, hi).
  [[nodiscard]] std::uint64_t total_in_range() const noexcept {
    return total_ - underflow_ - overflow_;
  }

  // Center of bin i.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  // Left edge of bin i.
  [[nodiscard]] double bin_left(std::size_t bin) const;

  // P(bin) normalised over *all* samples (under/overflow inclusive), so the
  // in-range PDF sums to <= 1 exactly as in the paper's truncated plots.
  [[nodiscard]] std::vector<double> Pdf() const;
  // Cumulative P(X <= right edge of bin), again normalised over all samples
  // with underflow counted below the first bin.
  [[nodiscard]] std::vector<double> Cdf() const;

  // Smallest x such that CDF(x) >= q, linearly interpolated within the bin.
  // q must be in [0, 1]; returns hi() if q exceeds the in-range mass.
  [[nodiscard]] double Quantile(double q) const;

  // Index of the fullest bin (ties: lowest index). Total must be > 0.
  [[nodiscard]] std::size_t ModeBin() const;

  // Mean of the samples as reconstructed from bin centers (in-range only).
  [[nodiscard]] double ApproxMean() const;

  void Merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace gametrace::stats
