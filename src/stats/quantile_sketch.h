// Relative-error streaming quantile sketch (DDSketch-style, Masson et al.).
//
// The paper's provisioning questions are tail questions - p99 per-client
// bandwidth against the 56 kbps modem ceiling (Figure 11), delay tails
// through the NAT device - and answering them live over an unbounded
// packet stream needs bounded memory. The sketch buckets values
// geometrically: bucket key k covers (gamma^(k-1), gamma^k] with
// gamma = (1 + alpha) / (1 - alpha), so any reported quantile is within
// relative error `alpha` of the exact sample quantile at the same rank.
// The store is a dense bounded array; when the dynamic range would exceed
// `max_buckets`, the lowest buckets collapse into one, preserving the
// upper tail (the provisioning-relevant end) exactly.
//
// Determinism / merge contract: the sketch state is a pure function of the
// *multiset* of samples. Merge() adds bucket counts key-wise and
// re-collapses; the collapse boundary depends only on the highest key
// present, so any merge order - and therefore any fleet worker count -
// produces bit-identical state. This is strictly stronger than the
// shard-order-fold guarantee the other accumulators provide.
#pragma once

#include <cstdint>
#include <vector>

namespace gametrace::stats {

// Quantile sketch over non-negative samples with relative accuracy
// `alpha` and at most `max_buckets` geometric buckets.
class QuantileSketch {
 public:
  explicit QuantileSketch(double alpha = 0.01, std::size_t max_buckets = 1024);

  // Records `weight` occurrences of `x`. x must be finite and >= 0; values
  // below the indexable floor (1e-9) land in a dedicated zero bucket.
  // O(1) amortized: one log, one bucket increment.
  void Add(double x, std::uint64_t weight = 1);

  // Absorbs another sketch of identical (alpha, max_buckets) geometry.
  // Bucket counts add key-wise; see the header comment for why the result
  // is independent of merge order. GT_CHECK fails on a geometry mismatch.
  void Merge(const QuantileSketch& other);

  // Value at quantile q in [0, 1], within relative error alpha of the
  // exact sample quantile at the same rank (clamped to the observed
  // [min, max]). Returns 0 for an empty sketch.
  [[nodiscard]] double Quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::uint64_t zero_count() const noexcept { return zero_count_; }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  // Exact running sum of samples (weighted); feeds Prometheus summary _sum.
  [[nodiscard]] double sum() const noexcept { return sum_; }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double gamma() const noexcept { return gamma_; }
  [[nodiscard]] std::size_t max_buckets() const noexcept { return max_buckets_; }

  // Dense bucket store: bucket i holds key min_key() + i. Exposed for
  // serialization (flight / metrics JSON) and the merge-determinism tests.
  [[nodiscard]] std::int32_t min_key() const noexcept { return min_key_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }

  // True when geometry (alpha, max_buckets) matches; the precondition for
  // Merge and for re-registration under the same instrument name.
  [[nodiscard]] bool SameShape(const QuantileSketch& other) const noexcept {
    return alpha_ == other.alpha_ && max_buckets_ == other.max_buckets_;
  }

  // Heap + object footprint in bytes; the telemetry memory gate sums this.
  [[nodiscard]] std::size_t MemoryBytes() const noexcept;

 private:
  [[nodiscard]] std::int32_t KeyFor(double x) const noexcept;
  void AddKey(std::int32_t key, std::uint64_t weight);
  void CollapseToBound();

  double alpha_;
  double gamma_;
  double log_gamma_;
  std::size_t max_buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t zero_count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::int32_t min_key_ = 0;  // key of counts_[0]; meaningless while empty
  std::vector<std::uint64_t> counts_;
};

}  // namespace gametrace::stats
