#include "stats/linear_regression.h"

#include <cmath>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::stats {

LineFit FitLine(std::span<const double> xs, std::span<const double> ys) {
  GT_CHECK_EQ(xs.size(), ys.size()) << "FitLine: size mismatch";
  const std::size_t n = xs.size();
  GT_CHECK_GE(n, 2) << "FitLine: need at least two points";

  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  GT_CHECK_NE(sxx, 0.0) << "FitLine: x values are all identical";

  LineFit fit;
  fit.n = n;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace gametrace::stats
