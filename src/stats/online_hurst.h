// Incremental variance-time / Hurst estimation (streaming Figure 5).
//
// The batch path (stats/variance_time.h) re-aggregates a stored TimeSeries
// at every block size m - O(series length) memory. This estimator keeps,
// for a fixed set of log-spaced block sizes, one open block accumulator
// and one RunningStats over completed block means, so the whole
// variance-time plot is maintained in O(#scales) memory while base-
// resolution bins stream through Push(). Blocks are aligned to absolute
// bin index (block b of scale m covers bins [b*m, (b+1)*m)), matching
// TimeSeries::AggregateMean, and a trailing partial block is excluded just
// as AggregateMean drops it - on identical input the per-scale normalized
// variances agree with ComputeVarianceTime up to floating-point noise.
//
// Merge semantics (fleet): per-scale block-mean statistics combine with
// the exact Chan parallel-variance formula, pooling the shards'
// block-mean populations. The merged plot is the population-pooled
// variance-time curve (the self-similarity of the *typical shard*), not
// the curve of the bin-wise summed aggregate series - computing the
// latter online would need cross-shard covariances, which no O(1) sketch
// can carry. The aggregate-series curve remains available post-hoc via
// core/aggregate + ComputeVarianceTime. Each side's open partial blocks
// cover the same trailing window when shards advance in lockstep; the
// other side's partials are discarded (at most one partial block per
// scale). Merging is a deterministic fold: fixed shard order in the fleet
// reduction gives bit-identical results at any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/running_stats.h"
#include "stats/variance_time.h"

namespace gametrace::stats {

class OnlineHurst {
 public:
  struct Options {
    // Block sizes in base bins, ascending, starting at 1.
    std::vector<std::size_t> scales;
    double base_interval = 0.050;  // seconds per base bin
    std::size_t min_blocks = 8;    // completed blocks required per plot point

    // Power-of-two scales 1, 2, 4, ... (num_scales of them): the default
    // log-spaced sweep. 16 scales at a 50 ms base reach 27 min - past the
    // paper's 50 ms - 30 min mid region.
    [[nodiscard]] static Options LogSpaced(double base_interval, std::size_t num_scales = 16);

    // The batch estimator's geometric sweep (m = 1, ceil(m*ratio), ...)
    // for series of `length` bins - the tolerance tests feed both
    // estimators identical input over identical block sizes.
    [[nodiscard]] static Options MatchingBatch(double base_interval, std::size_t length,
                                               const VarianceTimeOptions& batch = {});
  };

  explicit OnlineHurst(Options options);

  // Feeds the next completed base-resolution bin value, in time order.
  // Defined inline: this is the per-base-bin hot path of every Hurst-
  // tracking TieredRing, called once per tick at simulation scale.
  void Push(double bin_value) {
    ++samples_;
    if (cascade_) {
      // Doubling scales nest exactly: a completed block at level i IS half
      // a block at level i + 1, so one completion propagates its raw sum
      // upward instead of every level re-accumulating every bin. Level i
      // fires every 2^i pushes - amortized O(1) per push where the generic
      // loop is O(#scales). Block boundaries and values match the generic
      // path (same absolute alignment; sums associate in halves, and
      // sum * inv_m is exact for power-of-two m).
      double sum = bin_value;  // raw sum of the block just completed
      std::size_t i = 0;
      for (;;) {
        Scale& scale = scales_[i];
        scale.block_means.Add(sum * scale.inv_m);
        if (++i == scales_.size()) break;
        Scale& up = scales_[i];
        up.open_sum += sum;
        up.open_n += scale.m;
        if (up.open_n < up.m) break;
        sum = up.open_sum;
        up.open_sum = 0.0;
        up.open_n = 0;
      }
      return;
    }
    for (Scale& scale : scales_) {
      scale.open_sum += bin_value;
      if (++scale.open_n == scale.m) {
        scale.block_means.Add(scale.open_sum / static_cast<double>(scale.m));
        scale.open_sum = 0.0;
        scale.open_n = 0;
      }
    }
  }

  // Pools another estimator of identical options; see the header comment.
  void Merge(const OnlineHurst& other);

  // Base bins consumed so far (by this instance; pooled counts live in the
  // per-scale statistics).
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] bool SameShape(const OnlineHurst& other) const noexcept;

  // Variance-time plot over every scale with >= min_blocks completed
  // blocks, normalized by the scale-1 population variance - the same
  // normalization as ComputeVarianceTime. Zero base variance yields an
  // empty plot (callers guard with CanEstimate).
  [[nodiscard]] VarianceTimePlot EstimatePlot() const;

  // True when the region [min_interval, max_interval] (seconds) holds at
  // least two plot points and the base variance is positive - the
  // precondition for HurstEstimate.
  [[nodiscard]] bool CanEstimate(double min_interval_seconds, double max_interval_seconds) const;

  // H over the given region; the paper's mid-scale region by default.
  // Returns 0.5 (the short-range-dependence asymptote) when CanEstimate
  // is false.
  [[nodiscard]] double HurstEstimate(double min_interval_seconds = 0.050,
                                     double max_interval_seconds = 1800.0) const;

  [[nodiscard]] std::size_t MemoryBytes() const noexcept;

 private:
  struct Scale {
    std::size_t m = 1;
    double inv_m = 1.0;         // 1/m; exact for the power-of-two cascade,
                                // where sum * inv_m is bit-identical to
                                // sum / m without the divide latency
    double open_sum = 0.0;      // partial block in progress
    std::size_t open_n = 0;     // bins accumulated into open_sum
    RunningStats block_means;   // statistics over completed block means
  };

  Options options_;
  std::vector<Scale> scales_;
  std::uint64_t samples_ = 0;
  // True when every scale doubles the previous one (the LogSpaced
  // schedule): Push then cascades completed block sums upward in
  // amortized O(1) instead of touching every scale per bin.
  bool cascade_ = false;
};

}  // namespace gametrace::stats
