#include "stats/running_stats.h"

#include <algorithm>
#include <cmath>

namespace gametrace::stats {

void RunningStats::Merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::population_variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::cv() const noexcept {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

}  // namespace gametrace::stats
