// Regular-interval time series with re-aggregation.
//
// The paper's Figures 1-4 and 6-10 are all the same object at different
// interval sizes m (10 ms .. 30 min); TimeSeries stores the base-resolution
// bins and Aggregate() produces any coarser view.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/check.h"

namespace gametrace::stats {

// A sequence of equal-width time bins starting at `start_time` seconds, each
// `interval` seconds wide, accumulating a double per bin (packet counts,
// byte counts, player counts, ...).
class TimeSeries {
 public:
  TimeSeries(double start_time, double interval);

  // Adds `value` to the bin containing time `t`. Bins are created on demand;
  // samples before start_time are counted in dropped_before_start() and
  // otherwise ignored. Defined inline: this is the per-packet hot path of
  // every load/bandwidth figure.
  void Add(double t, double value = 1.0) {
    if (t < start_) {
      ++dropped_;
      return;
    }
    const std::size_t i = BinIndex(t);
    if (i >= bins_.size()) bins_.resize(i + 1, 0.0);
    bins_[i] += value;
  }

  // Batch fast path: adds `value` once per sample with a single bin lookup
  // and a single accumulation per same-bin run. Exact (bit-identical to the
  // scalar loop) whenever the accumulated values are integral, which covers
  // every packet-count and byte-count series in the library.
  void AddBatch(std::span<const double> times, double value = 1.0);

  // Columnar kernel over a dense timestamp column: identical to AddBatch
  // (same run aggregation); named for symmetry with the other columnar
  // kernels so call sites read uniformly.
  void AddColumn(std::span<const double> times, double value = 1.0) { AddBatch(times, value); }

  // Masked variant for direction-split series: adds `value` at times[i] only
  // where mask[i] == match, run-aggregated within the selection. mask must
  // be at least times.size() long.
  void AddColumn(std::span<const double> times, std::span<const std::uint8_t> mask,
                 std::uint8_t match, double value = 1.0);

  // Overwrites the bin containing `t` (used for gauge-style series such as
  // player counts sampled once per interval).
  void Set(double t, double value);

  [[nodiscard]] double start_time() const noexcept { return start_; }
  [[nodiscard]] double interval() const noexcept { return interval_; }
  [[nodiscard]] std::size_t size() const noexcept { return bins_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bins_.empty(); }
  [[nodiscard]] double operator[](std::size_t i) const {
    GT_CHECK_LT(i, bins_.size()) << "TimeSeries: bin index out of range";
    return bins_[i];
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return bins_; }
  [[nodiscard]] std::uint64_t dropped_before_start() const noexcept { return dropped_; }

  // Time at the left edge of bin i.
  [[nodiscard]] double bin_time(std::size_t i) const noexcept;

  // Ensures the series covers up to time `t_end` (zero-filled trailing bins).
  // Needed so idle tails are not silently truncated from rate computations.
  void ExtendTo(double t_end);

  // Sums each consecutive group of `factor` bins into a series with interval
  // factor * interval(). A trailing partial group is dropped (it would bias
  // the last bin low). factor must be >= 1.
  [[nodiscard]] TimeSeries Aggregate(std::size_t factor) const;

  // Per-bin mean over consecutive groups (Aggregate() / factor): this is the
  // "aggregated sequence of averages" used by the variance-time method.
  [[nodiscard]] TimeSeries AggregateMean(std::size_t factor) const;

  // Divides every bin by interval(), e.g. packets/bin -> packets/sec.
  [[nodiscard]] TimeSeries Rate() const;

  // Element-wise arithmetic over series with identical start/interval/size.
  [[nodiscard]] TimeSeries Plus(const TimeSeries& other) const;
  [[nodiscard]] TimeSeries Scaled(double k) const;

  // Bin-wise in-place add of a series with identical start/interval (sizes
  // may differ; the result covers the longer of the two). Equivalent to
  // having fed every sample of `other` into *this - the parallel-shard
  // reduction. Throws std::invalid_argument on incompatible geometry.
  void Merge(const TimeSeries& other);

  [[nodiscard]] double Mean() const noexcept;
  [[nodiscard]] double Variance() const noexcept;  // population variance
  [[nodiscard]] double Sum() const noexcept;
  [[nodiscard]] double Max() const noexcept;
  [[nodiscard]] double Min() const noexcept;

  // Index of the bin containing `t` (t must be >= start_time()). Public so
  // batch producers can run-aggregate same-bin samples with the exact
  // binning the scalar path uses.
  [[nodiscard]] std::size_t BinIndex(double t) const noexcept {
    return static_cast<std::size_t>((t - start_) / interval_);
  }

  // Adds `value` directly to bin `bin` (as returned by BinIndex), skipping
  // the time-to-bin division. For run-aggregating batch producers: adding a
  // run's integral sum here is bit-identical to per-sample Add calls.
  void AddAtBin(std::size_t bin, double value) {
    if (bin >= bins_.size()) bins_.resize(bin + 1, 0.0);
    bins_[bin] += value;
  }

 private:
  double start_;
  double interval_;
  std::vector<double> bins_;
  std::uint64_t dropped_ = 0;
};

}  // namespace gametrace::stats
