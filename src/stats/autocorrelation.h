// Sample autocorrelation and dominant-period detection.
//
// Used to verify the 50 ms broadcast periodicity: the autocorrelation of the
// 10 ms outbound packet-count series peaks at lag 5.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gametrace::stats {

// Sample autocorrelation at a single lag (biased estimator, as standard).
// Requires lag < xs.size(); returns 0 for a zero-variance series.
[[nodiscard]] double AutocorrelationAt(std::span<const double> xs, std::size_t lag);

// Autocorrelations for lags 0..max_lag inclusive.
[[nodiscard]] std::vector<double> Autocorrelation(std::span<const double> xs,
                                                  std::size_t max_lag);

// The lag in [1, max_lag] with the highest autocorrelation - the dominant
// period of the series in units of samples. Returns 0 if no positive peak.
[[nodiscard]] std::size_t DominantPeriod(std::span<const double> xs, std::size_t max_lag);

}  // namespace gametrace::stats
