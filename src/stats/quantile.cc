#include "stats/quantile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  GT_CHECK(q > 0.0 && q < 1.0) << "P2Quantile: q must be in (0,1)";
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::Add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) {
        positions_[i] = i + 1;
        desired_[i] = 1.0 + 4.0 * increments_[i];
      }
    }
    return;
  }

  int k;  // cell containing x
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;
  AdjustMarkers();
}

void P2Quantile::Merge(const P2Quantile& other) {
  GT_CHECK_EQ(other.q_, q_) << "P2Quantile::Merge: quantile mismatch";
  if (other.count_ == 0) return;
  if (other.count_ < 5) {
    // The other side still holds raw samples: replay them exactly.
    for (std::uint64_t i = 0; i < other.count_; ++i) Add(other.heights_[i]);
    return;
  }
  if (count_ < 5) {
    const auto pending = heights_;
    const auto n = count_;
    *this = other;
    for (std::uint64_t i = 0; i < n; ++i) Add(pending[i]);
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  count_ += other.count_;
  for (int i = 0; i < 5; ++i) {
    heights_[i] = (heights_[i] * na + other.heights_[i] * nb) / (na + nb);
    // Re-derive marker positions for the combined stream length (the ideal
    // positions the P-square update rule steers toward).
    desired_[i] = 1.0 + (static_cast<double>(count_) - 1.0) * increments_[i];
    positions_[i] = std::round(desired_[i]);
  }
  // Markers must stay strictly ordered in position for later updates.
  for (int i = 1; i < 5; ++i) {
    positions_[i] = std::max(positions_[i], positions_[i - 1] + 1.0);
  }
}

void P2Quantile::AdjustMarkers() noexcept {
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool move_right = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool move_left = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!move_right && !move_left) continue;
    const double step = move_right ? 1.0 : -1.0;
    double candidate = Parabolic(i, step);
    if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
      heights_[i] = candidate;
    } else {
      heights_[i] = Linear(i, static_cast<int>(step));
    }
    positions_[i] += step;
  }
}

double P2Quantile::Parabolic(int i, double d) const noexcept {
  const double np1 = positions_[i + 1];
  const double nm1 = positions_[i - 1];
  const double n = positions_[i];
  return heights_[i] +
         d / (np1 - nm1) *
             ((n - nm1 + d) * (heights_[i + 1] - heights_[i]) / (np1 - n) +
              (np1 - n - d) * (heights_[i] - heights_[i - 1]) / (n - nm1));
}

double P2Quantile::Linear(int i, int d) const noexcept {
  return heights_[i] + d * (heights_[i + d] - heights_[i]) / (positions_[i + d] - positions_[i]);
}

double P2Quantile::Value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact order statistic over the few samples seen so far.
    std::array<double, 5> tmp = heights_;
    std::sort(tmp.begin(), tmp.begin() + count_);
    const auto idx = static_cast<std::size_t>(
        std::min<double>(std::floor(q_ * static_cast<double>(count_)),
                         static_cast<double>(count_ - 1)));
    return tmp[idx];
  }
  return heights_[2];
}

}  // namespace gametrace::stats
