// Streaming first/second-moment accumulator (Welford's algorithm).
//
// Used everywhere a mean/variance over an unbounded packet stream is needed
// (Tables II/III mean packet sizes and loads) without storing samples.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>

namespace gametrace::stats {

// Numerically stable running mean / variance / min / max.
//
// All operations are O(1); two accumulators can be merged (parallel
// aggregation) with Merge(). Variance is the *sample* variance (n-1
// denominator); for n < 2 it is 0.
class RunningStats {
 public:
  // Defined inline: one Welford step per packet on the summary hot path.
  void Add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  // Batch fast path: sequential Welford in one tight, fully inlined loop -
  // bit-identical to per-sample Add() by construction (a Chan-style
  // pairwise combine would not be).
  void AddBatch(std::span<const double> xs) noexcept {
    for (const double x : xs) Add(x);
  }

  // Columnar kernels: sequential Welford over a dense u16 sample column
  // (packet sizes straight from a net::PacketBatch), optionally masked by a
  // u8 column (direction). Bit-identical to calling Add on each selected
  // sample in column order - the recurrence itself cannot be reordered.
  void AddColumnU16(std::span<const std::uint16_t> xs) noexcept {
    for (const std::uint16_t x : xs) Add(static_cast<double>(x));
  }
  void AddColumnU16(std::span<const std::uint16_t> xs, std::span<const std::uint8_t> mask,
                    std::uint8_t match) noexcept {
    const std::size_t n = xs.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (mask[i] == match) Add(static_cast<double>(xs[i]));
    }
  }

  // Combines another accumulator into this one, as if every sample fed to
  // `other` had been fed to *this (Chan et al. parallel variance).
  void Merge(const RunningStats& other) noexcept;

  void Reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  [[nodiscard]] double variance() const noexcept;          // sample variance
  [[nodiscard]] double population_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

  // Coefficient of variation (stddev / mean); 0 when the mean is 0.
  [[nodiscard]] double cv() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace gametrace::stats
