// Empirical distribution: build from weighted samples, sample by CDF
// inversion. Used by the fitted source models (core/traffic_model) to
// regenerate packet sizes with the measured distribution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gametrace::stats {

class Histogram;

// A discrete distribution over double values with arbitrary weights.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;

  // Adds a point mass. Weight must be positive.
  void Add(double value, double weight = 1.0);

  // Columnar bulk add: appends every sample of a dense u16 column as a unit
  // point mass in one reserve + tight loop (no per-sample weight check).
  void AddColumn(std::span<const std::uint16_t> xs);

  // Builds from a histogram's in-range bins (bin centers weighted by count).
  static EmpiricalDistribution FromHistogram(const Histogram& h);

  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] std::size_t support_size() const noexcept { return values_.size(); }
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  [[nodiscard]] double Mean() const;
  [[nodiscard]] double Variance() const;

  // Inverse-CDF lookup: smallest value whose cumulative weight fraction
  // reaches u. u must be in [0, 1); the distribution must be non-empty.
  [[nodiscard]] double SampleByUniform(double u) const;

  // Draws using any UniformRandomBitGenerator.
  template <typename Urbg>
  [[nodiscard]] double Sample(Urbg& g) const {
    const double u = static_cast<double>(g() - Urbg::min()) /
                     (static_cast<double>(Urbg::max() - Urbg::min()) + 1.0);
    return SampleByUniform(u);
  }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> values_;
  mutable std::vector<double> weights_;
  mutable std::vector<double> cumulative_;
  mutable bool dirty_ = false;
  double total_weight_ = 0.0;
};

}  // namespace gametrace::stats
