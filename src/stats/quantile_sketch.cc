#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace gametrace::stats {

namespace {

// Values below this are not worth a geometric bucket (a kbps or pps of
// 1e-9 is indistinguishable from idle); they share the zero bucket.
constexpr double kMinIndexable = 1e-9;

}  // namespace

QuantileSketch::QuantileSketch(double alpha, std::size_t max_buckets)
    : alpha_(alpha), max_buckets_(max_buckets) {
  GT_CHECK(alpha > 0.0 && alpha < 1.0) << "QuantileSketch: alpha must be in (0,1)";
  GT_CHECK_GE(max_buckets, 2u) << "QuantileSketch: need at least two buckets";
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  log_gamma_ = std::log(gamma_);
}

std::int32_t QuantileSketch::KeyFor(double x) const noexcept {
  return static_cast<std::int32_t>(std::ceil(std::log(x) / log_gamma_));
}

void QuantileSketch::Add(double x, std::uint64_t weight) {
  GT_CHECK(std::isfinite(x) && x >= 0.0) << "QuantileSketch::Add: sample must be finite and >= 0";
  if (weight == 0) return;
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += weight;
  sum_ += x * static_cast<double>(weight);
  if (x < kMinIndexable) {
    zero_count_ += weight;
    return;
  }
  AddKey(KeyFor(x), weight);
}

void QuantileSketch::AddKey(std::int32_t key, std::uint64_t weight) {
  if (counts_.empty()) {
    min_key_ = key;
    counts_.push_back(weight);
    return;
  }
  const std::int32_t max_key = min_key_ + static_cast<std::int32_t>(counts_.size()) - 1;
  if (key > max_key) {
    counts_.resize(counts_.size() + static_cast<std::size_t>(key - max_key), 0);
    counts_.back() += weight;
    CollapseToBound();
    return;
  }
  if (key < min_key_) {
    // The collapse boundary is a pure function of the highest key present,
    // so a low sample either grows the store (still under the bound) or
    // folds straight into the boundary bucket - the same final state as if
    // it had arrived before the collapse.
    const std::int32_t boundary =
        max_key - static_cast<std::int32_t>(max_buckets_) + 1;
    const std::int32_t new_min = std::max(key, boundary);
    if (new_min < min_key_) {
      counts_.insert(counts_.begin(), static_cast<std::size_t>(min_key_ - new_min), 0);
      min_key_ = new_min;
    }
    counts_[static_cast<std::size_t>(std::max(key, min_key_) - min_key_)] += weight;
    return;
  }
  counts_[static_cast<std::size_t>(key - min_key_)] += weight;
}

void QuantileSketch::CollapseToBound() {
  if (counts_.size() <= max_buckets_) return;
  const std::size_t overflow = counts_.size() - max_buckets_;
  std::uint64_t folded = 0;
  for (std::size_t i = 0; i <= overflow; ++i) folded += counts_[i];
  counts_.erase(counts_.begin(), counts_.begin() + static_cast<std::ptrdiff_t>(overflow));
  counts_.front() = folded;
  min_key_ += static_cast<std::int32_t>(overflow);
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  GT_CHECK(SameShape(other)) << "QuantileSketch::Merge: geometry mismatch (alpha/max_buckets)";
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i] == 0) continue;
    AddKey(other.min_key_ + static_cast<std::int32_t>(i), other.counts_[i]);
  }
}

double QuantileSketch::Quantile(double q) const {
  GT_CHECK(q >= 0.0 && q <= 1.0) << "QuantileSketch::Quantile: q must be in [0,1]";
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cumulative = zero_count_;
  if (rank < static_cast<double>(cumulative)) return std::min(std::max(0.0, min_), max_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (rank < static_cast<double>(cumulative)) {
      const std::int32_t key = min_key_ + static_cast<std::int32_t>(i);
      // Midpoint of the bucket's value range: 2 * gamma^key / (gamma + 1).
      const double estimate =
          2.0 * std::exp(static_cast<double>(key) * log_gamma_) / (gamma_ + 1.0);
      return std::clamp(estimate, min_, max_);
    }
  }
  return max_;
}

std::size_t QuantileSketch::MemoryBytes() const noexcept {
  return sizeof(*this) + counts_.capacity() * sizeof(std::uint64_t);
}

}  // namespace gametrace::stats
