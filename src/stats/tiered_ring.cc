#include "stats/tiered_ring.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace gametrace::stats {

namespace {

// Adds `from`'s raw triple into `into` (tier cascade and shard merge share
// this); the max combine must read into.count before it grows.
void FoldBin(TieredRing::Bin& into, const TieredRing::Bin& from) {
  if (from.count > 0) {
    into.max = into.count > 0 ? std::max(into.max, from.max) : from.max;
  }
  into.sum += from.sum;
  into.count += from.count;
}

}  // namespace

TieredRing::Options TieredRing::Options::PaperSchedule(double base_interval) {
  Options options;
  options.tiers = {
      {.interval = base_interval, .capacity = 128},           // ticks
      {.interval = base_interval * 20.0, .capacity = 240},    // ~seconds
      {.interval = base_interval * 1200.0, .capacity = 240},  // ~minutes
      {.interval = base_interval * 72000.0, .capacity = 168}, // ~hours, one week
  };
  options.reduction = Reduction::kSum;
  return options;
}

TieredRing::TieredRing(Options options) : options_(std::move(options)) {
  GT_CHECK(!options_.tiers.empty()) << "TieredRing: need at least one tier";
  tiers_.reserve(options_.tiers.size());
  double previous_interval = 0.0;
  for (std::size_t k = 0; k < options_.tiers.size(); ++k) {
    const TierSpec& spec = options_.tiers[k];
    GT_CHECK_GT(spec.interval, 0.0) << "TieredRing: tier interval must be positive";
    GT_CHECK_GE(spec.capacity, 1u) << "TieredRing: tier capacity must be positive";
    GT_CHECK_GT(spec.interval, previous_interval)
        << "TieredRing: tiers must be ordered fine to coarse";
    previous_interval = spec.interval;
    Tier tier;
    tier.interval = spec.interval;
    tier.capacity = spec.capacity;
    tier.bins.resize(spec.capacity);
    tiers_.push_back(std::move(tier));
  }
  for (std::size_t k = 0; k + 1 < tiers_.size(); ++k) {
    const double ratio = tiers_[k + 1].interval / tiers_[k].interval;
    const auto whole = static_cast<std::size_t>(std::llround(ratio));
    GT_CHECK(whole >= 2 &&
             std::fabs(tiers_[k + 1].interval - tiers_[k].interval * static_cast<double>(whole)) <=
                 1e-9 * tiers_[k + 1].interval)
        << "TieredRing: each tier interval must be an integer multiple (>= 2) of the previous";
    tiers_[k].ratio = whole;
  }
  if (options_.track_hurst) {
    hurst_.emplace(OnlineHurst::Options::LogSpaced(tiers_.front().interval,
                                                   options_.hurst_scales));
  }
}

double TieredRing::BinValue(const Bin& bin) const noexcept {
  switch (options_.reduction) {
    case Reduction::kSum:
      return bin.sum;
    case Reduction::kMax:
      return bin.max;
    case Reduction::kMean:
      return bin.count > 0 ? bin.sum / static_cast<double>(bin.count) : 0.0;
  }
  return 0.0;
}

void TieredRing::EvictFront(std::size_t k) {
  Tier& tier = tiers_[k];
  const Bin evicted = tier.bins[static_cast<std::size_t>(tier.first) % tier.capacity];
  const double value = BinValue(evicted);
  tier.evicted_value_max =
      tier.evicted == 0 ? value : std::max(tier.evicted_value_max, value);
  tier.evicted_value_sum += value;
  ++tier.evicted;
  if (k == 0 && hurst_.has_value()) hurst_->Push(value);
  ++tier.first;
  --tier.held;
  if (k + 1 < tiers_.size()) {
    if (tier.fold_phase == 0) {
      // First fold into this coarse bin: create it (cascading the coarse
      // tier's own evictions as needed). Later folds reuse the slot - the
      // coarse tier only ever evicts from its front, never the newest bin
      // being filled.
      Bin* coarse = EnsureCovers(k + 1, tier.fold_index);
      GT_CHECK(coarse != nullptr) << "TieredRing: coarse tier fell behind its fine tier";
    }
    FoldBin(tiers_[k + 1].bins[tier.fold_slot], evicted);
    if (++tier.fold_phase == tier.ratio) {
      tier.fold_phase = 0;
      ++tier.fold_index;
      if (++tier.fold_slot == tiers_[k + 1].capacity) tier.fold_slot = 0;
    }
  }
}

TieredRing::Bin* TieredRing::EnsureCovers(std::size_t k, std::int64_t index) {
  Tier& tier = tiers_[k];
  if (index < tier.first) return nullptr;  // window already moved past this bin
  while (tier.first + static_cast<std::int64_t>(tier.held) <= index) {
    if (tier.held == tier.capacity) {
      EvictFront(k);
      continue;
    }
    const auto slot =
        static_cast<std::size_t>(tier.first + static_cast<std::int64_t>(tier.held)) %
        tier.capacity;
    tier.bins[slot] = Bin{};
    ++tier.held;
  }
  return &tier.bins[static_cast<std::size_t>(index) % tier.capacity];
}

void TieredRing::Add(double t, double value) {
  // Same-bin fast path (see the header): the common case is a burst of
  // samples into the newest base bin, two compares away.
  if (t >= fast_lo_ && t < fast_hi_) {
    Bin& bin = tiers_.front().bins[fast_slot_];
    bin.max = bin.count > 0 ? std::max(bin.max, value) : value;
    bin.sum += value;
    ++bin.count;
    return;
  }
  const double interval = tiers_.front().interval;
  std::int64_t index;
  if (fast_hi_ >= 0.0 && t >= fast_hi_ && t < fast_hi_ + interval) {
    // Consecutive-bin path (the tick cadence): the sample falls in the bin
    // right after the cached one, so its index is one increment - no
    // divide. NaN/inf t fail the window compares and take the checked
    // divide below.
    index = fast_index_ + 1;
  } else {
    GT_CHECK(std::isfinite(t) && t >= 0.0) << "TieredRing::Add: time must be finite and >= 0";
    index = static_cast<std::int64_t>(t / interval);
  }
  Bin* bin = EnsureCovers(0, index);
  if (bin == nullptr) {
    ++dropped_late_;
    return;
  }
  // The bin just produced (or found) is tier 0's newest; cache its window.
  // EnsureCovers cannot evict it afterwards without another slow-path call.
  fast_lo_ = static_cast<double>(index) * interval;
  fast_hi_ = static_cast<double>(index + 1) * interval;
  fast_slot_ = static_cast<std::size_t>(index) % tiers_.front().capacity;
  fast_index_ = index;
  if (bin->count == 0) {
    bin->max = value;
  } else {
    bin->max = std::max(bin->max, value);
  }
  bin->sum += value;
  ++bin->count;
}

void TieredRing::AdvanceTo(double t) {
  GT_CHECK(std::isfinite(t) && t >= 0.0) << "TieredRing::AdvanceTo: time must be finite and >= 0";
  fast_hi_ = -1.0;  // the window may move past the cached bin
  const auto index = static_cast<std::int64_t>(t / tiers_.front().interval);
  if (index < tiers_.front().first) return;
  EnsureCovers(0, index);
}

bool TieredRing::SameShape(const TieredRing& other) const noexcept {
  if (options_.reduction != other.options_.reduction ||
      options_.track_hurst != other.options_.track_hurst ||
      options_.hurst_scales != other.options_.hurst_scales ||
      tiers_.size() != other.tiers_.size()) {
    return false;
  }
  for (std::size_t k = 0; k < tiers_.size(); ++k) {
    if (tiers_[k].interval != other.tiers_[k].interval ||
        tiers_[k].capacity != other.tiers_[k].capacity) {
      return false;
    }
  }
  return true;
}

void TieredRing::Merge(const TieredRing& other) {
  GT_CHECK(SameShape(other)) << "TieredRing::Merge: schedule/reduction mismatch";
  for (std::size_t k = 0; k < tiers_.size(); ++k) {
    Tier& mine = tiers_[k];
    const Tier& theirs = other.tiers_[k];
    GT_CHECK(mine.first == theirs.first && mine.held == theirs.held)
        << "TieredRing::Merge: rings must advance in lockstep (same duration, same "
           "grid); AdvanceTo a common end time first";
    for (std::size_t i = 0; i < mine.held; ++i) {
      const auto slot =
          static_cast<std::size_t>(mine.first + static_cast<std::int64_t>(i)) % mine.capacity;
      FoldBin(mine.bins[slot], theirs.bins[slot]);
    }
    // Pooled eviction aggregates: sums add (aggregate-exact mean), peaks
    // take the worst single shard - see the header comment.
    mine.evicted_value_sum += theirs.evicted_value_sum;
    mine.evicted_value_max = std::max(mine.evicted_value_max, theirs.evicted_value_max);
  }
  dropped_late_ += other.dropped_late_;
  if (hurst_.has_value()) hurst_->Merge(*other.hurst_);
}

double TieredRing::tier_interval(std::size_t tier) const {
  GT_CHECK_LT(tier, tiers_.size()) << "TieredRing: tier out of range";
  return tiers_[tier].interval;
}

std::size_t TieredRing::tier_capacity(std::size_t tier) const {
  GT_CHECK_LT(tier, tiers_.size()) << "TieredRing: tier out of range";
  return tiers_[tier].capacity;
}

std::size_t TieredRing::tier_held(std::size_t tier) const {
  GT_CHECK_LT(tier, tiers_.size()) << "TieredRing: tier out of range";
  return tiers_[tier].held;
}

std::int64_t TieredRing::tier_first(std::size_t tier) const {
  GT_CHECK_LT(tier, tiers_.size()) << "TieredRing: tier out of range";
  return tiers_[tier].first;
}

std::uint64_t TieredRing::tier_evicted(std::size_t tier) const {
  GT_CHECK_LT(tier, tiers_.size()) << "TieredRing: tier out of range";
  return tiers_[tier].evicted;
}

double TieredRing::TierValue(std::size_t tier, std::int64_t index) const {
  GT_CHECK_LT(tier, tiers_.size()) << "TieredRing: tier out of range";
  const Tier& t = tiers_[tier];
  GT_CHECK(index >= t.first && index < t.first + static_cast<std::int64_t>(t.held))
      << "TieredRing::TierValue: bin not held";
  return BinValue(t.bins[static_cast<std::size_t>(index) % t.capacity]);
}

TieredRing::TierStats TieredRing::Stats(std::size_t tier) const {
  GT_CHECK_LT(tier, tiers_.size()) << "TieredRing: tier out of range";
  const Tier& t = tiers_[tier];
  TierStats stats;
  stats.bins = t.evicted + t.held;
  double value_sum = t.evicted_value_sum;
  double peak = t.evicted > 0 ? t.evicted_value_max : 0.0;
  bool have_peak = t.evicted > 0;
  for (std::size_t i = 0; i < t.held; ++i) {
    const auto slot =
        static_cast<std::size_t>(t.first + static_cast<std::int64_t>(i)) % t.capacity;
    const double value = BinValue(t.bins[slot]);
    value_sum += value;
    peak = have_peak ? std::max(peak, value) : value;
    have_peak = true;
  }
  stats.mean = stats.bins > 0 ? value_sum / static_cast<double>(stats.bins) : 0.0;
  stats.peak = have_peak ? peak : 0.0;
  return stats;
}

std::vector<double> TieredRing::RecentValues(std::size_t tier, std::size_t n) const {
  GT_CHECK_LT(tier, tiers_.size()) << "TieredRing: tier out of range";
  const Tier& t = tiers_[tier];
  const std::size_t take = std::min(n, t.held);
  std::vector<double> values;
  values.reserve(take);
  for (std::size_t i = t.held - take; i < t.held; ++i) {
    const auto slot =
        static_cast<std::size_t>(t.first + static_cast<std::int64_t>(i)) % t.capacity;
    values.push_back(BinValue(t.bins[slot]));
  }
  return values;
}

std::size_t TieredRing::MemoryBytes() const noexcept {
  std::size_t bytes = sizeof(*this) + tiers_.capacity() * sizeof(Tier) +
                      options_.tiers.capacity() * sizeof(TierSpec);
  for (const Tier& tier : tiers_) bytes += tier.bins.capacity() * sizeof(Bin);
  if (hurst_.has_value()) bytes += hurst_->MemoryBytes();
  return bytes;
}

}  // namespace gametrace::stats
