#include "stats/time_series.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::stats {

TimeSeries::TimeSeries(double start_time, double interval)
    : start_(start_time), interval_(interval) {
  GT_CHECK(interval > 0.0) << "TimeSeries: interval must be positive";
}

void TimeSeries::AddBatch(std::span<const double> times, double value) {
  const std::size_t n = times.size();
  std::size_t i = 0;
  while (i < n) {
    const double t = times[i];
    if (t < start_) {
      ++dropped_;
      ++i;
      continue;
    }
    const std::size_t bin = BinIndex(t);
    // Extend the run while consecutive samples land in the same bin: one
    // lookup, one resize check and one accumulation for the whole run.
    std::size_t j = i + 1;
    while (j < n && times[j] >= start_ && BinIndex(times[j]) == bin) ++j;
    if (bin >= bins_.size()) bins_.resize(bin + 1, 0.0);
    bins_[bin] += value * static_cast<double>(j - i);
    i = j;
  }
}

void TimeSeries::AddColumn(std::span<const double> times, std::span<const std::uint8_t> mask,
                           std::uint8_t match, double value) {
  const std::size_t n = times.size();
  std::size_t i = 0;
  while (i < n) {
    if (mask[i] != match) {
      ++i;
      continue;
    }
    const double t = times[i];
    if (t < start_) {
      ++dropped_;
      ++i;
      continue;
    }
    const std::size_t bin = BinIndex(t);
    std::size_t run = 1;
    std::size_t j = i + 1;
    // Extend over the selected run: skipped samples end the run only if a
    // later selected sample lands in a different bin.
    while (j < n) {
      if (mask[j] != match) {
        ++j;
        continue;
      }
      if (times[j] < start_ || BinIndex(times[j]) != bin) break;
      ++run;
      ++j;
    }
    if (bin >= bins_.size()) bins_.resize(bin + 1, 0.0);
    bins_[bin] += value * static_cast<double>(run);
    i = j;
  }
}

void TimeSeries::Set(double t, double value) {
  if (t < start_) {
    ++dropped_;
    return;
  }
  const std::size_t i = BinIndex(t);
  if (i >= bins_.size()) bins_.resize(i + 1, 0.0);
  bins_[i] = value;
}

double TimeSeries::bin_time(std::size_t i) const noexcept {
  return start_ + static_cast<double>(i) * interval_;
}

void TimeSeries::ExtendTo(double t_end) {
  if (t_end <= start_) return;
  const auto needed = static_cast<std::size_t>(std::ceil((t_end - start_) / interval_));
  if (needed > bins_.size()) bins_.resize(needed, 0.0);
}

TimeSeries TimeSeries::Aggregate(std::size_t factor) const {
  GT_CHECK_NE(factor, 0) << "TimeSeries::Aggregate: factor must be >= 1";
  TimeSeries out(start_, interval_ * static_cast<double>(factor));
  const std::size_t whole = bins_.size() / factor;
  out.bins_.resize(whole, 0.0);
  for (std::size_t g = 0; g < whole; ++g) {
    double sum = 0.0;
    for (std::size_t j = 0; j < factor; ++j) sum += bins_[g * factor + j];
    out.bins_[g] = sum;
  }
  return out;
}

TimeSeries TimeSeries::AggregateMean(std::size_t factor) const {
  TimeSeries out = Aggregate(factor);
  for (auto& v : out.bins_) v /= static_cast<double>(factor);
  return out;
}

TimeSeries TimeSeries::Rate() const {
  TimeSeries out(start_, interval_);
  out.bins_ = bins_;
  for (auto& v : out.bins_) v /= interval_;
  return out;
}

TimeSeries TimeSeries::Plus(const TimeSeries& other) const {
  GT_CHECK(other.start_ == start_ && other.interval_ == interval_)
      << "TimeSeries::Plus: incompatible series";
  TimeSeries out(start_, interval_);
  out.bins_.resize(std::max(bins_.size(), other.bins_.size()), 0.0);
  for (std::size_t i = 0; i < bins_.size(); ++i) out.bins_[i] += bins_[i];
  for (std::size_t i = 0; i < other.bins_.size(); ++i) out.bins_[i] += other.bins_[i];
  return out;
}

void TimeSeries::Merge(const TimeSeries& other) {
  GT_CHECK(other.start_ == start_ && other.interval_ == interval_)
      << "TimeSeries::Merge: incompatible series geometry";
  if (other.bins_.size() > bins_.size()) bins_.resize(other.bins_.size(), 0.0);
  for (std::size_t i = 0; i < other.bins_.size(); ++i) bins_[i] += other.bins_[i];
  dropped_ += other.dropped_;
}

TimeSeries TimeSeries::Scaled(double k) const {
  TimeSeries out(start_, interval_);
  out.bins_ = bins_;
  for (auto& v : out.bins_) v *= k;
  return out;
}

double TimeSeries::Mean() const noexcept {
  if (bins_.empty()) return 0.0;
  return Sum() / static_cast<double>(bins_.size());
}

double TimeSeries::Variance() const noexcept {
  if (bins_.empty()) return 0.0;
  const double m = Mean();
  double acc = 0.0;
  for (double v : bins_) {
    const double d = v - m;
    acc += d * d;
  }
  return acc / static_cast<double>(bins_.size());
}

double TimeSeries::Sum() const noexcept {
  double acc = 0.0;
  for (double v : bins_) acc += v;
  return acc;
}

double TimeSeries::Max() const noexcept {
  return bins_.empty() ? 0.0 : *std::max_element(bins_.begin(), bins_.end());
}

double TimeSeries::Min() const noexcept {
  return bins_.empty() ? 0.0 : *std::min_element(bins_.begin(), bins_.end());
}

}  // namespace gametrace::stats
