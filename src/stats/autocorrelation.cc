#include "stats/autocorrelation.h"

#include <stdexcept>

#include "core/check.h"

namespace gametrace::stats {

namespace {

double MeanOf(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return xs.empty() ? 0.0 : acc / static_cast<double>(xs.size());
}

}  // namespace

double AutocorrelationAt(std::span<const double> xs, std::size_t lag) {
  GT_CHECK_LT(lag, xs.size()) << "AutocorrelationAt: lag >= series length";
  const double mean = MeanOf(xs);
  double denom = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    denom += d * d;
  }
  if (denom == 0.0) return 0.0;
  double num = 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    num += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  return num / denom;
}

std::vector<double> Autocorrelation(std::span<const double> xs, std::size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag + 1);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) out.push_back(AutocorrelationAt(xs, lag));
  return out;
}

std::size_t DominantPeriod(std::span<const double> xs, std::size_t max_lag) {
  const std::vector<double> ac = Autocorrelation(xs, max_lag);
  std::size_t best = 0;
  double best_value = 0.0;
  // Skip lag 0 (trivially 1) and require a local peak so a slowly decaying
  // correlation does not report lag 1 as a "period".
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    const bool left_ok = ac[lag] >= ac[lag - 1];
    const bool right_ok = lag + 1 > max_lag || ac[lag] >= ac[lag + 1];
    if (left_ok && right_ok && ac[lag] > best_value) {
      best = lag;
      best_value = ac[lag];
    }
  }
  return best;
}

}  // namespace gametrace::stats
