// Aggregated-variance method for long-range-dependence analysis (Figure 5).
//
// The sequence is divided into consecutive blocks of m base intervals, block
// means are taken, and the variance of the means - normalised by the variance
// of the unaggregated sequence - is plotted against m on log-log axes. The
// Hurst parameter is H = 1 - beta/2 where beta is the magnitude of the
// best-fit slope. H = 1/2 indicates short-range dependence; H near 1
// indicates long-range dependence; H < 1/2 indicates anti-persistence
// (the paper's small-m region, caused by 50 ms tick periodicity).
#pragma once

#include <vector>

#include "stats/linear_regression.h"
#include "stats/time_series.h"

namespace gametrace::stats {

struct VariancePoint {
  std::size_t m = 1;              // block size, in base intervals
  double interval_seconds = 0.0;  // m * base interval
  double normalized_variance = 0.0;
  double log10_m = 0.0;
  double log10_normalized_variance = 0.0;
};

struct VarianceTimePlot {
  double base_interval = 0.0;
  double base_variance = 0.0;  // variance of the unaggregated sequence
  std::vector<VariancePoint> points;

  // Number of points whose interval size lies in
  // [min_interval_seconds, max_interval_seconds]. Callers should confirm a
  // region holds at least two points before asking for a fit over it.
  [[nodiscard]] std::size_t PointsInRegion(double min_interval_seconds,
                                           double max_interval_seconds) const noexcept;

  // Fits the log-log points whose interval size lies in
  // [min_interval_seconds, max_interval_seconds] and returns the fit.
  // Contract: the region must contain at least two points.
  [[nodiscard]] LineFit FitRegion(double min_interval_seconds,
                                  double max_interval_seconds) const;

  // H = 1 - beta/2 with beta = |slope| of the fit over the given region.
  [[nodiscard]] double HurstEstimate(double min_interval_seconds,
                                     double max_interval_seconds) const;
};

struct VarianceTimeOptions {
  // Block sizes are swept geometrically: m = 1, ceil(1*ratio), ... while at
  // least `min_blocks` whole blocks fit in the series.
  double ratio = 1.5;
  std::size_t min_blocks = 8;
};

// Computes the variance-time plot of `base` (typically a 10 ms packet-count
// series, as in the paper). Throws if the series has fewer than
// options.min_blocks bins or zero variance.
[[nodiscard]] VarianceTimePlot ComputeVarianceTime(const TimeSeries& base,
                                                   const VarianceTimeOptions& options = {});

// Convenience wrapper around the paper's three-region reading of Figure 5.
struct HurstRegions {
  double small_scale = 0.0;  // m < 50 ms      (expect H < 1/2: periodicity)
  double mid_scale = 0.0;    // 50 ms - 30 min (expect H > 1/2: map changes)
  double large_scale = 0.0;  // > 30 min       (expect H ~ 1/2)
};

[[nodiscard]] HurstRegions EstimateHurstRegions(const VarianceTimePlot& plot,
                                                double small_mid_boundary = 0.050,
                                                double mid_large_boundary = 1800.0);

}  // namespace gametrace::stats
