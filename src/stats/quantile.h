// P-square streaming quantile estimator (Jain & Chlamtac, 1985).
//
// Lets the NAT-device and characterizer report delay percentiles over
// hundreds of millions of packets in O(1) memory.
#pragma once

#include <array>
#include <cstdint>

namespace gametrace::stats {

// Estimates a single quantile q of a stream without storing samples.
// After at least 5 observations Value() returns the P-square estimate;
// before that it returns the exact order statistic of what has been seen.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void Add(double x) noexcept;

  // Combines another estimator of the *same* quantile q. P-square keeps only
  // five markers, so the combination is approximate: marker heights are
  // averaged weighted by sample count and marker positions re-derived for
  // the combined count. Either side with fewer than 5 samples is replayed
  // exactly. Accuracy matches single-stream P-square to within its usual
  // estimation error; counts are exact. Throws if the target quantiles
  // differ.
  void Merge(const P2Quantile& other);

  [[nodiscard]] double Value() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  void AdjustMarkers() noexcept;
  [[nodiscard]] double Parabolic(int i, double d) const noexcept;
  [[nodiscard]] double Linear(int i, int d) const noexcept;

  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{};  // actual marker positions
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace gametrace::stats
