#include "stats/online_hurst.h"

#include <cmath>

#include "core/check.h"

namespace gametrace::stats {

OnlineHurst::Options OnlineHurst::Options::LogSpaced(double base_interval,
                                                     std::size_t num_scales) {
  Options options;
  options.base_interval = base_interval;
  options.scales.reserve(num_scales);
  std::size_t m = 1;
  for (std::size_t i = 0; i < num_scales; ++i) {
    options.scales.push_back(m);
    m *= 2;
  }
  return options;
}

OnlineHurst::Options OnlineHurst::Options::MatchingBatch(double base_interval,
                                                         std::size_t length,
                                                         const VarianceTimeOptions& batch) {
  GT_CHECK_GT(batch.ratio, 1.0) << "OnlineHurst: batch ratio must exceed 1";
  Options options;
  options.base_interval = base_interval;
  options.min_blocks = batch.min_blocks;
  std::size_t m = 1;
  while (length / m >= batch.min_blocks) {
    options.scales.push_back(m);
    const auto next =
        static_cast<std::size_t>(std::ceil(static_cast<double>(m) * batch.ratio));
    m = next > m ? next : m + 1;
  }
  return options;
}

OnlineHurst::OnlineHurst(Options options) : options_(std::move(options)) {
  GT_CHECK(!options_.scales.empty()) << "OnlineHurst: need at least one scale";
  GT_CHECK_EQ(options_.scales.front(), 1u) << "OnlineHurst: scales must start at m = 1";
  GT_CHECK_GT(options_.base_interval, 0.0) << "OnlineHurst: base interval must be positive";
  scales_.reserve(options_.scales.size());
  std::size_t previous = 0;
  for (const std::size_t m : options_.scales) {
    GT_CHECK_GT(m, previous) << "OnlineHurst: scales must be strictly ascending";
    previous = m;
    Scale scale;
    scale.m = m;
    scale.inv_m = 1.0 / static_cast<double>(m);
    scales_.push_back(scale);
  }
  cascade_ = true;
  for (std::size_t i = 1; i < scales_.size(); ++i) {
    cascade_ = cascade_ && scales_[i].m == 2 * scales_[i - 1].m;
  }
}

bool OnlineHurst::SameShape(const OnlineHurst& other) const noexcept {
  return options_.scales == other.options_.scales &&
         options_.base_interval == other.options_.base_interval &&
         options_.min_blocks == other.options_.min_blocks;
}

void OnlineHurst::Merge(const OnlineHurst& other) {
  GT_CHECK(SameShape(other)) << "OnlineHurst::Merge: scale schedule mismatch";
  samples_ += other.samples_;
  for (std::size_t i = 0; i < scales_.size(); ++i) {
    // Pool completed-block statistics (Chan parallel variance, exact);
    // the other side's open partial covers the same trailing window as
    // ours when shards advance in lockstep and is dropped - see header.
    scales_[i].block_means.Merge(other.scales_[i].block_means);
  }
}

VarianceTimePlot OnlineHurst::EstimatePlot() const {
  VarianceTimePlot plot;
  plot.base_interval = options_.base_interval;
  plot.base_variance = scales_.front().block_means.population_variance();
  if (plot.base_variance <= 0.0) return plot;
  for (const Scale& scale : scales_) {
    if (scale.block_means.count() < options_.min_blocks) continue;
    VariancePoint p;
    p.m = scale.m;
    p.interval_seconds = options_.base_interval * static_cast<double>(scale.m);
    p.normalized_variance = scale.block_means.population_variance() / plot.base_variance;
    p.log10_m = std::log10(static_cast<double>(scale.m));
    // Match the batch estimator's clamp for zero variance at a scale.
    p.log10_normalized_variance =
        p.normalized_variance > 0.0 ? std::log10(p.normalized_variance) : -12.0;
    plot.points.push_back(p);
  }
  return plot;
}

bool OnlineHurst::CanEstimate(double min_interval_seconds, double max_interval_seconds) const {
  const VarianceTimePlot plot = EstimatePlot();
  return plot.base_variance > 0.0 &&
         plot.PointsInRegion(min_interval_seconds, max_interval_seconds) >= 2;
}

double OnlineHurst::HurstEstimate(double min_interval_seconds,
                                  double max_interval_seconds) const {
  if (!CanEstimate(min_interval_seconds, max_interval_seconds)) return 0.5;
  return EstimatePlot().HurstEstimate(min_interval_seconds, max_interval_seconds);
}

std::size_t OnlineHurst::MemoryBytes() const noexcept {
  return sizeof(*this) + scales_.capacity() * sizeof(Scale) +
         options_.scales.capacity() * sizeof(std::size_t);
}

}  // namespace gametrace::stats
