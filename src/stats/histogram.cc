#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  GT_CHECK(std::isfinite(lo) && std::isfinite(hi))
      << "Histogram: bin edges must be finite (lo=" << lo << ", hi=" << hi << ")";
  GT_CHECK(hi > lo) << "Histogram: hi must exceed lo";
  GT_CHECK_NE(bins, 0) << "Histogram: need at least one bin";
}

void Histogram::AddBatch(std::span<const double> xs, std::uint64_t weight) noexcept {
  const std::size_t n = xs.size();
  std::size_t i = 0;
  while (i < n) {
    const double x = xs[i];
    std::size_t j = i + 1;
    if (x < lo_) {
      while (j < n && xs[j] < lo_) ++j;
      underflow_ += weight * (j - i);
    } else if (x >= hi_) {
      while (j < n && xs[j] >= hi_) ++j;
      overflow_ += weight * (j - i);
    } else {
      auto bin = static_cast<std::size_t>((x - lo_) / width_);
      bin = std::min(bin, counts_.size() - 1);
      while (j < n && xs[j] >= lo_ && xs[j] < hi_ &&
             std::min(static_cast<std::size_t>((xs[j] - lo_) / width_), counts_.size() - 1) ==
                 bin) {
        ++j;
      }
      counts_[bin] += weight * (j - i);
    }
    total_ += weight * (j - i);
    i = j;
  }
}

void Histogram::AddColumn(std::span<const std::uint16_t> xs) noexcept {
  const std::size_t last = counts_.size() - 1;
  std::uint64_t under = 0;
  std::uint64_t over = 0;
  for (const std::uint16_t xi : xs) {
    const double x = static_cast<double>(xi);
    if (x < lo_) {
      ++under;
      continue;
    }
    if (x >= hi_) {
      ++over;
      continue;
    }
    ++counts_[std::min(static_cast<std::size_t>((x - lo_) / width_), last)];
  }
  underflow_ += under;
  overflow_ += over;
  total_ += xs.size();
}

void Histogram::AddColumn(std::span<const std::uint16_t> xs, std::span<const std::uint8_t> mask,
                          std::uint8_t match) noexcept {
  const std::size_t last = counts_.size() - 1;
  const std::size_t n = xs.size();
  std::uint64_t added = 0;
  std::uint64_t under = 0;
  std::uint64_t over = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] != match) continue;
    ++added;
    const double x = static_cast<double>(xs[i]);
    if (x < lo_) {
      ++under;
      continue;
    }
    if (x >= hi_) {
      ++over;
      continue;
    }
    ++counts_[std::min(static_cast<std::size_t>((x - lo_) / width_), last)];
  }
  underflow_ += under;
  overflow_ += over;
  total_ += added;
}

double Histogram::bin_center(std::size_t bin) const {
  GT_CHECK_LT(bin, counts_.size()) << "Histogram::bin_center: bin out of range";
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::bin_left(std::size_t bin) const {
  GT_CHECK_LT(bin, counts_.size()) << "Histogram::bin_left: bin out of range";
  return lo_ + static_cast<double>(bin) * width_;
}

std::vector<double> Histogram::Pdf() const {
  std::vector<double> pdf(counts_.size(), 0.0);
  if (total_ == 0) return pdf;
  const double n = static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    pdf[i] = static_cast<double>(counts_[i]) / n;
  }
  return pdf;
}

std::vector<double> Histogram::Cdf() const {
  std::vector<double> cdf(counts_.size(), 0.0);
  if (total_ == 0) return cdf;
  const double n = static_cast<double>(total_);
  double running = static_cast<double>(underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += static_cast<double>(counts_[i]);
    cdf[i] = running / n;
  }
  return cdf;
}

double Histogram::Quantile(double q) const {
  GT_CHECK(q >= 0.0 && q <= 1.0) << "Histogram::Quantile: q outside [0,1]";
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double running = static_cast<double>(underflow_);
  if (running >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = running + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - running) / static_cast<double>(counts_[i]);
      return bin_left(i) + frac * width_;
    }
    running = next;
  }
  return hi_;
}

std::size_t Histogram::ModeBin() const {
  GT_CHECK_NE(total_in_range(), 0) << "Histogram::ModeBin: empty histogram";
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

double Histogram::ApproxMean() const {
  const std::uint64_t n = total_in_range();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    sum += static_cast<double>(counts_[i]) * bin_center(i);
  }
  return sum / static_cast<double>(n);
}

void Histogram::Merge(const Histogram& other) {
  GT_CHECK(other.lo_ == lo_ && other.hi_ == hi_ && other.counts_.size() == counts_.size())
      << "Histogram::Merge: incompatible binning";
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

}  // namespace gametrace::stats
