// Ordinary least-squares line fit.
//
// The Hurst parameter in the paper is "the magnitude of the slope of the
// best-fit line" through the log-log variance-time points; this is that fit.
#pragma once

#include <span>

namespace gametrace::stats {

struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // coefficient of determination
  std::size_t n = 0;
};

// Fits y = slope * x + intercept. Requires xs.size() == ys.size() >= 2 and
// at least two distinct x values; throws std::invalid_argument otherwise.
[[nodiscard]] LineFit FitLine(std::span<const double> xs, std::span<const double> ys);

}  // namespace gametrace::stats
