#!/usr/bin/env python3
"""Render a fleet scheduler critical-path report (--sched-report-out) for humans.

Shows where each worker's wall-clock went as a stacked utilization bar
(work / merge / steal-scan / admission-stall / idle), the steal matrix
(who stole from whom), the top straggler units with their shard ranges,
and any scheduler SLO alerts the report carries. With --timeline it also
sanity-checks the Perfetto trace (--sched-trace-out) against the report:
events per worker track and the bounded-buffer drop count.

The report is the machine-readable side of DESIGN.md "Fleet scheduling:
timeline tracing and critical-path attribution"; per-worker components
sum to each worker's measured span exactly, so the bars are a complete
account of the makespan, not a sample.

Usage:
    fleet_view.py sched_report.json
    fleet_view.py sched_report.json --timeline fleet_timeline.json
    fleet_view.py sched_report.json --width 60

Exit status 0 on success, 1 for unreadable/malformed input.
"""

import argparse
import json
import sys

from viz_common import format_ns, print_table, stacked_bar

# Stacked-bar segment order and glyphs: busy components first, then the
# waits. Mirrors SchedReport::Worker's decomposition.
COMPONENTS = ("work_ns", "merge_ns", "steal_ns", "stall_ns", "idle_ns")
COMPONENT_CHARS = ("█", "▓", "▒", "░", " ")
LEGEND = "█ work  ▓ merge  ▒ steal-scan  ░ admission-stall  (blank) idle"


def read_json(path, what):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"fleet_view: cannot read {what} {path}: {err}")


def check_report(report, path):
    for key in ("workers", "makespan_ns", "per_worker"):
        if key not in report:
            sys.exit(f"fleet_view: {path}: missing '{key}' - not a sched report?")
    return report


def print_workers(report, width):
    print(f"worker utilization ({LEGEND}):")
    rows = []
    for w in report["per_worker"]:
        span = w.get("span_ns", 0)
        fractions = [w.get(c, 0) / span if span else 0.0 for c in COMPONENTS]
        rows.append([
            f"  w{w['worker']}",
            "|" + stacked_bar(fractions, COMPONENT_CHARS, width) + "|",
            f"busy {100.0 * w.get('busy_ratio', 0):.1f}%",
            f"span {format_ns(span)}",
            f"units {w.get('units', 0)}",
            f"shards {w.get('shards', 0)}",
            f"steals {w.get('steals', 0)}",
        ])
    print_table(rows)


def print_steal_matrix(matrix):
    if not matrix or not any(any(row) for row in matrix):
        print("steal matrix: no steals")
        return
    print("steal matrix (row = thief, column = victim):")
    header = ["  "] + [f"w{v}" for v in range(len(matrix))]
    rows = [header]
    for thief, row in enumerate(matrix):
        rows.append([f"  w{thief}"] + [str(n) if n else "." for n in row])
    print_table(rows)


def print_stragglers(stragglers):
    if not stragglers:
        print("stragglers: none recorded")
        return
    print("stragglers (longest units first):")
    rows = []
    for s in stragglers:
        first = s.get("first_shard", 0)
        rows.append([
            f"  unit {s.get('unit', '?')}",
            f"shards [{first},{first + s.get('shard_count', 0)})",
            f"on w{s.get('worker', '?')}",
            format_ns(s.get("dur_ns", 0)),
        ])
    print_table(rows)


def print_alerts(alerts):
    if not alerts:
        print("scheduler alerts: none")
        return
    print(f"{len(alerts)} scheduler alert(s):")
    for alert in alerts:
        print(f"  {alert.get('rule', '?')}: {alert.get('value', 0):g} vs "
              f"{alert.get('threshold', 0):g}  ({alert.get('description', '')})")


def print_timeline(path, report):
    doc = read_json(path, "timeline")
    events = doc.get("traceEvents")
    if events is None:
        sys.exit(f"fleet_view: {path}: no 'traceEvents' - not a Chrome trace?")
    per_track = {}
    for event in events:
        per_track[event.get("pid", 0)] = per_track.get(event.get("pid", 0), 0) + 1
    dropped = (doc.get("otherData") or {}).get("dropped_events", 0)
    workers = report.get("workers", 0)
    print(f"timeline: {len(events)} events across {len(per_track)} worker track(s), "
          f"{dropped} dropped")
    if per_track and workers and len(per_track) != workers:
        print(f"  note: report has {workers} workers but the timeline has "
              f"{len(per_track)} tracks (saturated tracks drop newest-first)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="critical-path JSON written by --sched-report-out")
    parser.add_argument("--timeline", default=None,
                        help="worker timeline written by --sched-trace-out, cross-checked")
    parser.add_argument("--width", type=int, default=40,
                        help="utilization bar width in cells (default 40)")
    args = parser.parse_args()

    report = check_report(read_json(args.report, "report"), args.report)
    makespan = report.get("makespan_ns", 0)
    print(f"fleet critical path: {report['workers']} worker(s), "
          f"makespan {format_ns(makespan)}")
    print(f"  imbalance {report.get('imbalance_ratio', 0):.3f} (max busy / mean busy)   "
          f"admission stall {100.0 * report.get('admission_stall_fraction', 0):.1f}% "
          f"of summed worker-time")
    print_workers(report, max(args.width, 8))
    print_steal_matrix(report.get("steal_matrix", []))
    print_stragglers(report.get("stragglers", []))
    print_alerts(report.get("alerts", []))
    if args.timeline:
        print_timeline(args.timeline, report)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # piping into head is fine
        sys.exit(0)
