"""Shared terminal-rendering helpers for the viewer tools (stdlib-only).

flight_view.py (snapshot streams) and fleet_view.py (scheduler reports)
both render unicode sparklines, threshold overlays and fraction bars;
this module is the single copy of those primitives so the two stay
pixel-compatible.
"""

SPARK_CHARS = " .:-=+*#%@"
BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values):
    """One block character per value, min..max normalized to 8 levels."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return BLOCKS[0] * len(values)
    span = hi - lo
    return "".join(BLOCKS[min(int((v - lo) / span * 8), 7)] for v in values)


def overlay(values, threshold, direction):
    """A '!' under each value on the wrong side of the threshold."""
    marks = []
    for v in values:
        breached = v > threshold if direction == "above" else v < threshold
        marks.append("!" if breached else " ")
    return "".join(marks)


def bar(fraction, width):
    """A solid bar filling `fraction` of `width` cells (clamped to [0,1]).

    Uses eighth-block characters for the fractional tail, so adjacent
    bars differing by <1 cell still render distinguishably.
    """
    fraction = min(max(fraction, 0.0), 1.0)
    eighths = round(fraction * width * 8)
    full, rem = divmod(eighths, 8)
    cells = BLOCKS[7] * full
    if rem:
        cells += BLOCKS[rem - 1]
    return cells.ljust(width)


def stacked_bar(fractions, chars, width):
    """One bar of `width` cells split into len(fractions) segments.

    Each segment i fills round(fractions[i] * width) cells drawn with
    chars[i]; rounding drift lands on the largest segment so the bar
    always spans exactly `width` cells.
    """
    if len(fractions) != len(chars):
        raise ValueError("fractions and chars must align")
    total = sum(fractions)
    if total > 1.0 and total > 0:
        fractions = [f / total for f in fractions]
    cells = [round(f * width) for f in fractions]
    drift = width - sum(cells)
    if cells and drift != 0:
        cells[cells.index(max(cells))] += drift
    out = "".join(c * max(n, 0) for n, c in zip(cells, chars))
    return out[:width].ljust(width)


def format_interval(seconds):
    """Compact 's'/'m'/'h' rendering of a tier interval."""
    if seconds >= 3600:
        return f"{seconds / 3600:g}h"
    if seconds >= 60:
        return f"{seconds / 60:g}m"
    return f"{seconds:g}s"


def format_ns(ns):
    """Human wall-clock: ns -> 'x.y ms' / 'x.y s' as magnitude fits."""
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.1f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f} us"
    return f"{ns:.0f} ns"


def print_table(rows, out=None):
    """Prints rows (lists of strings) with columns left-aligned."""
    import sys

    out = out or sys.stdout
    if not rows:
        return
    widths = [max(len(str(row[i])) for row in rows) for i in range(len(rows[0]))]
    for row in rows:
        print("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip(),
              file=out)
