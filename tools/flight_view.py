#!/usr/bin/env python3
"""Render a flight-recorder snapshot stream (--flight-out JSONL) for humans.

Default mode prints one unicode sparkline per selected metric with min/max
annotations and, when the metric has a watchdog SLO threshold, an overlay
marking the samples that sit on the wrong side of it. CSV mode emits the
stream as a spreadsheet-ready table instead.

The derived per-minute signals mirror the WatchdogEngine's built-in rules
(src/obs/watchdog.cc), so a threshold marker here and an alert in
--alerts-out agree by construction:

  client_kbps   8 * d(server.bytes_to_clients)/dt / server.active_players
                against the 56 kbps modem ceiling (Fig 11)
  nat_pps       d(nat.device.packets)/dt against ~850 pps (Table IV)
  refusals_ps   d(server.connections.refused)/dt against 0.25/s (Table III)

Sketch instruments (quantile sketches in the "sketches" section) expose
derived per-snapshot columns "<name>.p50" / ".p90" / ".p99"; the built-in
"client.bandwidth.kbps.p99" column carries the same 56 kbps SLO marker as
the watchdog's client.bandwidth.p99 rule. Ring instruments (tiered
time-series in the "rings" section) expose "<name>.hurst" columns and are
additionally rendered, from the newest snapshot, as one sparkline per ring
with a '│' at each tier boundary (tiers fine to coarse, each tier
normalized on its own scale).

Usage:
    flight_view.py flight.jsonl                      # sparklines, key metrics
    flight_view.py flight.jsonl --metrics nat_pps    # one derived signal
    flight_view.py flight.jsonl --csv                # full stream as CSV
    flight_view.py flight.jsonl --alerts alerts.jsonl  # annotate alert times

Exit status 0 on success, 1 for unreadable/empty/malformed input.
"""

import argparse
import csv
import json
import sys

from viz_common import format_interval, overlay, sparkline

# Derived signals and their SLO thresholds (name, threshold, direction).
THRESHOLDS = {
    "client_kbps": (56.0, "above"),
    "nat_pps": (850.0, "above"),
    "refusals_ps": (0.25, "above"),
    "client.bandwidth.kbps.p99": (56.0, "above"),
}

# Delta-derived signals (everything in THRESHOLDS except sketch columns,
# which read snapshot state directly).
DERIVED = {"client_kbps", "nat_pps", "refusals_ps"}

DEFAULT_METRICS = [
    "client_kbps",
    "client.bandwidth.kbps.p99",
    "nat_pps",
    "refusals_ps",
    "server.active_players",
    "server.packets_emitted",
    "server.load.pps.hurst",
    "sim.queue.high_water",
]

# Sketch/ring column suffixes understood by raw_value().
SKETCH_FIELDS = ("p50", "p90", "p99", "count", "min", "max")


def read_stream(path):
    """Parses the JSONL snapshot stream into a list of snapshot dicts."""
    snapshots = []
    try:
        with open(path, encoding="utf-8") as fh:
            for number, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError as err:
                    sys.exit(f"flight_view: {path}:{number}: bad JSON: {err}")
                for key in ("t", "seq", "metrics"):
                    if key not in doc:
                        sys.exit(f"flight_view: {path}:{number}: missing '{key}'")
                snapshots.append(doc)
    except OSError as err:
        sys.exit(f"flight_view: cannot read {path}: {err}")
    if not snapshots:
        sys.exit(f"flight_view: {path} holds no snapshots")
    return snapshots


def read_alerts(path):
    alerts = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    alerts.append(json.loads(line))
    except (OSError, ValueError) as err:
        sys.exit(f"flight_view: cannot read alerts {path}: {err}")
    return alerts


def counter(snapshot, name):
    return snapshot["metrics"].get("counters", {}).get(name, 0)


def gauge(snapshot, name):
    entry = snapshot["metrics"].get("gauges", {}).get(name)
    return entry["value"] if entry else 0.0


def raw_value(snapshot, name):
    counters = snapshot["metrics"].get("counters", {})
    if name in counters:
        return float(counters[name])
    base, _, field = name.rpartition(".")
    if field in SKETCH_FIELDS:
        entry = snapshot["metrics"].get("sketches", {}).get(base)
        if entry is not None:
            return float(entry.get(field) or 0.0)
    if field == "hurst":
        entry = snapshot["metrics"].get("rings", {}).get(base)
        if entry is not None:
            hurst = entry.get("hurst") or {}
            # null until enough scales resolve; plot as 0 rather than a gap.
            return float(hurst.get("estimate") or 0.0)
    return gauge(snapshot, name)


def derive_series(snapshots, name):
    """Returns the per-snapshot values of `name` (raw or derived)."""
    if name not in DERIVED:
        return [raw_value(s, name) for s in snapshots]
    values = []
    prev_t, prev = 0.0, None
    for snapshot in snapshots:
        dt = snapshot["t"] - prev_t
        if dt <= 0:
            values.append(0.0)
        elif name == "client_kbps":
            delta = counter(snapshot, "server.bytes_to_clients") - (
                counter(prev, "server.bytes_to_clients") if prev else 0)
            players = gauge(snapshot, "server.active_players")
            values.append(8.0 * delta / dt / players / 1e3 if players > 0 else 0.0)
        elif name == "nat_pps":
            delta = counter(snapshot, "nat.device.packets") - (
                counter(prev, "nat.device.packets") if prev else 0)
            values.append(delta / dt)
        else:  # refusals_ps
            delta = counter(snapshot, "server.connections.refused") - (
                counter(prev, "server.connections.refused") if prev else 0)
            values.append(delta / dt)
        prev_t, prev = snapshot["t"], snapshot
    return values


def threshold_for(name):
    if name in THRESHOLDS:
        value, direction = THRESHOLDS[name]
        # client_kbps renders in kbps; its rule threshold is 56000 bit/s.
        return value, direction
    return None, None


def print_instruments(snapshot):
    """Renders the newest snapshot's sketches and rings.

    Rings draw one sparkline per ring, tiers fine to coarse separated by
    '│', each tier normalized on its own scale (a 50 ms bin and an hourly
    bin share no meaningful y-axis).
    """
    sketches = snapshot["metrics"].get("sketches", {})
    if sketches:
        print("sketches (newest snapshot):")
        width = max(len(n) for n in sketches)
        for name in sorted(sketches):
            entry = sketches[name]
            print(f"  {name:<{width}}  "
                  f"p50 {entry.get('p50', 0) or 0:g}  "
                  f"p90 {entry.get('p90', 0) or 0:g}  "
                  f"p99 {entry.get('p99', 0) or 0:g}  "
                  f"n {int(entry.get('count', 0))}  "
                  f"min {entry.get('min', 0) or 0:g}  "
                  f"max {entry.get('max', 0) or 0:g}")
    rings = snapshot["metrics"].get("rings", {})
    if rings:
        print("rings (newest snapshot, tiers fine→coarse, '│' = tier boundary):")
        width = max(len(n) for n in rings)
        for name in sorted(rings):
            entry = rings[name]
            segments = []
            labels = []
            for tier in entry.get("tiers", []):
                values = tier.get("values") or tier.get("recent") or []
                segments.append(sparkline(values))
                labels.append(format_interval(tier.get("interval", 0)))
            line = "│".join(s for s in segments if s)
            stats = "tiers " + "/".join(labels)
            hurst = (entry.get("hurst") or {}).get("estimate")
            if hurst is not None:
                stats += f"  hurst {hurst:.3f}"
            dropped = entry.get("dropped_late", 0)
            if dropped:
                stats += f"  dropped_late {int(dropped)}"
            print(f"  {name:<{width}}  {line}  {stats}")


def print_sparklines(snapshots, names, alerts):
    t0, t1 = snapshots[0]["t"], snapshots[-1]["t"]
    print(f"{len(snapshots)} snapshots, t = {t0:g} .. {t1:g} s "
          f"(seq {snapshots[0]['seq']:.0f}..{snapshots[-1]['seq']:.0f})")
    label_width = max(len(n) for n in names)
    for name in names:
        values = derive_series(snapshots, name)
        threshold, direction = threshold_for(name)
        line = sparkline(values)
        stats = f"min {min(values):g}  max {max(values):g}"
        if threshold is not None:
            stats += f"  slo {direction} {threshold:g}"
        print(f"  {name:<{label_width}}  {line}  {stats}")
        if threshold is not None:
            marks = overlay(values, threshold, direction)
            if "!" in marks:
                print(f"  {'':<{label_width}}  {marks}  breached samples")
    print_instruments(snapshots[-1])
    if alerts:
        print(f"{len(alerts)} alert(s):")
        for alert in alerts:
            print(f"  t={alert.get('t', 0):>8g}  {alert.get('rule', '?')}: "
                  f"{alert.get('value', 0):g} vs {alert.get('threshold', 0):g}")


def print_csv(snapshots, names, out):
    writer = csv.writer(out)
    writer.writerow(["t", "seq"] + names)
    columns = [derive_series(snapshots, name) for name in names]
    for i, snapshot in enumerate(snapshots):
        writer.writerow([snapshot["t"], int(snapshot["seq"])] +
                        [columns[j][i] for j in range(len(names))])


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("stream", help="snapshot JSONL written by --flight-out")
    parser.add_argument("--metrics", nargs="+", default=None,
                        help="metric names or derived signals "
                             f"({', '.join(sorted(THRESHOLDS))})")
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of sparklines")
    parser.add_argument("--alerts", default=None,
                        help="alerts JSONL written by --alerts-out, appended to the view")
    args = parser.parse_args()

    snapshots = read_stream(args.stream)
    if args.metrics is not None:
        names = args.metrics
    else:
        newest = snapshots[-1]["metrics"]
        present = set(newest.get("counters", {}))
        present |= set(newest.get("gauges", {}))
        for name in newest.get("sketches", {}):
            present |= {f"{name}.{field}" for field in SKETCH_FIELDS}
        present |= {f"{name}.hurst" for name in newest.get("rings", {})}
        names = [n for n in DEFAULT_METRICS if n in present or n in THRESHOLDS]
    alerts = read_alerts(args.alerts) if args.alerts else []

    if args.csv:
        print_csv(snapshots, names, sys.stdout)
    else:
        print_sparklines(snapshots, names, alerts)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # piping into head is fine
        sys.exit(0)
