#!/usr/bin/env python3
"""Compare a freshly generated BENCH_hotpath.json against the committed baseline.

Shared CI runners are too noisy to gate on absolute packets/sec, so the
comparison uses machine-independent quantities only:

  * hard speedup floors on the *committed baseline* (curated best-of-N
    numbers, so floors are meaningful there): batched/scalar >= 1.0 at
    the delivery-bound depths 1-3, and columnar-fused/scalar >= 2.0 at
    depths 1-3 and >= 1.0 at depth 4. Depth 4 is kernel-bound, not
    delivery-bound - the summary sink's Welford recurrence and the
    session tracker's per-flow hash update are serial per-record chains
    that no delivery tier can reorder - so parity, not 2x, is the honest
    floor there; what the floor defends is that the shipping tier
    (columnar-fused, what FleetEngine actually drives) never regresses
    below scalar again (it sat at 0.88x before fusion),
  * per-chain batched/scalar and columnar-fused/scalar speedup ratios
    (fresh must be within --tolerance, default 25%, of the committed
    value - fresh runs on shared runners are too noisy for hard floors),
  * the observability budget: the idle GT_PROF_SCOPE overhead fraction
    must stay under --obs-budget (default 2%) in absolute terms, and
  * the flight-recorder budget: sampling one registry snapshot per
    sim-minute must also stay under --obs-budget relative to the hot-path
    cost of a paper-scale minute of traffic,
  * the streaming-telemetry budget: the active per-record cost of the
    wired instruments (one tiered-ring point per packet plus the per-
    client-minute sketch observation) must stay under --obs-budget of the
    hot-path record budget, and
  * the flat-memory contract: the telemetry footprint after a 10-hour
    simulated workload must not exceed the 1-hour footprint - sketches
    collapse and rings are capacity-pinned, so growth with sim length is
    an unbounded-memory regression, not noise.

The fleet scaling report (BENCH_fleet.json) is gated too:

  * the committed baseline must be a paper-week workload (>= --fleet-min-servers
    servers, >= --fleet-min-packets packets per sweep point) and must hold
    the scaling floor at its top worker count,
  * the scaling floor is core-count-aware: the sweep is gated at the
    largest worker count the generating machine can express (workers <=
    available_cores), where the floor is --fleet-per-core x workers,
    capped at --fleet-floor - so an 8-core machine must show >= 5.0x at
    the 8-worker point, a 4-core CI runner >= 2.5x at the 4-worker point,
    and a 1-core container is judged only on its (trivial) 1-worker point
    while its oversubscribed points remain recorded as data,
  * the fresh sweep is held to a softer --fleet-per-core-fresh floor
    (shared runners suffer noisy-neighbor contention the curated baseline
    does not), and when both reports are supplied at least one of them
    must actually gate at >= 2 workers - a 1-core baseline plus a 1-core
    fresh run means the scaling floor was never exercised, which fails
    rather than passing vacuously, and
  * every fleet report must declare deterministic_across_workers: true -
    the sweep byte-compares the merged metrics across worker counts (the
    traced run's merged metrics are part of the same compare, so tracing
    is re-proven inert on every sweep), and
  * the fresh sweep must carry a "sched_trace" section pricing the
    scheduler timeline: the traced-vs-untraced overhead fraction must
    stay under --obs-budget, the per-worker critical-path components
    must sum to each worker's span (components_sum_ok), and the traced
    run must actually have produced timeline events. The committed
    baseline may predate the section; when present there it is held to
    the same budget.

Exit status 0 when everything holds, 1 with a per-check report otherwise.

Usage:
    bench_compare.py --fresh build-release/BENCH_hotpath.json \
                     [--baseline BENCH_hotpath.json] [--tolerance 0.25] \
                     [--fleet-baseline BENCH_fleet.json] \
                     [--fleet-fresh build-release/BENCH_fleet.json]
"""

import argparse
import json
import sys

# Hard floors checked against the committed baseline. Depths 1-3 are
# delivery-bound (per-record virtual dispatch and striding dominate), so
# batching must win outright and fusion must at least double throughput.
# Depth 4 is kernel-bound (serial Welford + per-flow hash chains), so the
# fused tier is held at parity with scalar - the regression CI must catch
# is the pre-fusion 0.88x, not a missing 2x that no delivery tier can buy.
BATCHED_FLOORS = {1: 1.0, 2: 1.0, 3: 1.0}
COLUMNAR_FLOORS = {1: 2.0, 2: 2.0, 3: 2.0, 4: 1.0}


def check_floors(baseline, failures):
    for run in baseline.get("runs", []):
        depth = run["chain_depth"]
        for label, key, floors in (
            ("batched", "speedup", BATCHED_FLOORS),
            ("columnar-fused", "columnar_speedup", COLUMNAR_FLOORS),
        ):
            floor = floors.get(depth)
            if floor is None:
                continue
            value = run.get(key)
            if value is None:
                failures.append(f"baseline depth {depth} has no '{key}' field")
                continue
            ok = value >= floor
            print(f"  baseline depth {depth}: {label} speedup {value:.3f} "
                  f"(floor {floor:.1f}) {'ok' if ok else 'BELOW FLOOR'}")
            if not ok:
                failures.append(
                    f"baseline depth {depth} {label} speedup {value:.3f} "
                    f"is below the committed floor {floor:.1f}")


def check_fleet(doc, name, args, failures, require_scale, per_core):
    """Validates one fleet scaling report (committed baseline or fresh run).

    Returns the worker count the scaling floor was gated at (1 when the
    generating machine could not express any multi-worker point), so the
    caller can verify the multi-worker floor was exercised *somewhere*.
    """
    runs = {r["workers"]: r for r in doc.get("runs", [])}
    if 1 not in runs or len(runs) < 2:
        failures.append(f"{name}: fleet report needs a 1-worker run and at least one more")
        return 0
    base_pps = runs[1]["packets_per_second"]
    if base_pps <= 0.0:
        failures.append(f"{name}: single-worker throughput is zero")
        return 0

    # Core-count-aware floor: scaling is gated at the largest sweep point
    # the machine can actually express (workers <= cores). Oversubscribed
    # points stay in the report as data - on a 1-core container 8 threads
    # time-slice one core and measure context-switch cost, not the
    # scheduler - but they are not what the floor judges.
    cores = int(doc.get("available_cores", 0))
    if cores <= 0:
        failures.append(f"{name}: fleet report does not record available_cores")
        cores = 1
    feasible = [w for w in runs if w <= cores]
    gate_workers = max(feasible) if feasible else 1
    speedup = runs[gate_workers]["packets_per_second"] / base_pps
    floor = min(args.fleet_floor, per_core * gate_workers)
    ok = speedup >= floor
    print(f"  {name}: fleet speedup {speedup:.2f}x at {gate_workers} workers "
          f"({cores} cores; floor {floor:.2f}x) {'ok' if ok else 'BELOW FLOOR'}")
    if not ok:
        failures.append(
            f"{name}: fleet speedup {speedup:.2f}x at {gate_workers} workers is below "
            f"the floor {floor:.2f}x ({cores} cores available)")
    if gate_workers < 2:
        print(f"  {name}: NOTE 1-core machine - the multi-worker floor cannot be "
              f"expressed by this report and must come from a multi-core sweep")

    if doc.get("deterministic_across_workers") is not True:
        failures.append(f"{name}: merged metrics were not identical across worker counts")

    if require_scale:
        servers = doc.get("shards", 0)
        packets = doc.get("packets_per_run", 0)
        print(f"  {name}: scale {servers} servers, {packets:.3g} packets per sweep point")
        if servers < args.fleet_min_servers:
            failures.append(
                f"{name}: {servers} servers is below the paper-week scale floor "
                f"of {args.fleet_min_servers}")
        if packets < args.fleet_min_packets:
            failures.append(
                f"{name}: {packets:.3g} packets per sweep point is below the "
                f"paper-week scale floor of {args.fleet_min_packets:.3g}")
    return gate_workers


def check_sched_trace(doc, name, args, failures, required):
    """Validates the scheduler-timeline pricing section of a fleet report.

    `required` is True for the fresh sweep (perf_micro always emits the
    section now); the committed baseline may predate it, in which case
    its absence is noted but not failed.
    """
    section = doc.get("sched_trace")
    if section is None:
        if required:
            failures.append(
                f"{name}: no 'sched_trace' section (timeline overhead unchecked)")
        else:
            print(f"  {name}: no sched_trace section (predates timeline tracing), skipped")
        return
    overhead = section.get("overhead_fraction", 1.0)
    ok = overhead < args.obs_budget
    print(f"  {name}: sched-trace overhead {overhead:.4%} at "
          f"{section.get('workers', '?')} workers (budget {args.obs_budget:.0%}) "
          f"{'ok' if ok else 'OVER BUDGET'}")
    if not ok:
        failures.append(
            f"{name}: scheduler timeline overhead {overhead:.4%} exceeds the "
            f"{args.obs_budget:.0%} observability budget")
    if section.get("components_sum_ok") is not True:
        failures.append(
            f"{name}: critical-path components do not sum to worker spans "
            f"(max_component_error {section.get('max_component_error', '?')})")
    events = section.get("timeline_events", 0)
    print(f"  {name}: sched-trace timeline {events} events, "
          f"{section.get('timeline_dropped', 0)} dropped, "
          f"max component error {section.get('max_component_error', 0):.2e}")
    if events <= 0:
        failures.append(f"{name}: traced fleet run produced no timeline events")


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="just-generated BENCH_hotpath.json")
    parser.add_argument("--baseline", default="BENCH_hotpath.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression (default: %(default)s)")
    parser.add_argument("--obs-budget", type=float, default=0.02,
                        help="max idle observability overhead fraction (default: %(default)s)")
    parser.add_argument("--fleet-baseline", default="BENCH_fleet.json",
                        help="committed fleet scaling report (default: %(default)s; "
                             "'' skips the fleet checks)")
    parser.add_argument("--fleet-fresh", default="",
                        help="just-generated BENCH_fleet.json (optional)")
    parser.add_argument("--fleet-floor", type=float, default=5.0,
                        help="nominal speedup floor at 8 workers (default: %(default)s)")
    parser.add_argument("--fleet-per-core", type=float, default=0.625,
                        help="per-core efficiency floor when cores < workers "
                             "(default: %(default)s)")
    parser.add_argument("--fleet-per-core-fresh", type=float, default=0.4,
                        help="softer per-core floor for the fresh sweep - shared CI "
                             "runners suffer noisy-neighbor contention the curated "
                             "baseline does not (default: %(default)s)")
    parser.add_argument("--fleet-min-servers", type=int, default=1000,
                        help="paper-week scale: baseline server count floor "
                             "(default: %(default)s)")
    parser.add_argument("--fleet-min-packets", type=float, default=400e6,
                        help="paper-week scale: baseline packets per sweep point floor "
                             "(default: %(default)s)")
    args = parser.parse_args()

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = []

    check_floors(baseline, failures)
    # The multi-worker scaling floor must be exercised by at least one fleet
    # report or the gate is vacuous: a baseline curated on a 1-core container
    # trivially passes its own 1-worker point, so when the baseline machine
    # cannot express parallelism the fresh sweep (multi-core CI runner) must.
    gate_points = []
    if args.fleet_baseline:
        fleet_baseline = load(args.fleet_baseline)
        gate_points.append(check_fleet(
            fleet_baseline, "fleet baseline", args, failures,
            require_scale=True, per_core=args.fleet_per_core))
        check_sched_trace(fleet_baseline, "fleet baseline", args, failures,
                          required=False)
    if args.fleet_fresh:
        fleet_fresh = load(args.fleet_fresh)
        gate_points.append(check_fleet(
            fleet_fresh, "fleet fresh", args, failures,
            require_scale=False, per_core=args.fleet_per_core_fresh))
        check_sched_trace(fleet_fresh, "fleet fresh", args, failures,
                          required=True)
    if args.fleet_baseline and args.fleet_fresh and max(gate_points) < 2:
        failures.append(
            "fleet scaling floor was never exercised at >1 worker: neither the "
            "committed baseline nor the fresh sweep ran on a multi-core machine, "
            "so the gate is vacuous - regenerate one of them with >= 2 cores")

    base_by_depth = {r["chain_depth"]: r for r in baseline.get("runs", [])}
    for run in fresh.get("runs", []):
        depth = run["chain_depth"]
        base = base_by_depth.get(depth)
        if base is None:
            print(f"  depth {depth}: no baseline entry, skipped")
            continue
        for label, key in (("batched", "speedup"),
                           ("columnar-fused", "columnar_speedup")):
            if key not in run or key not in base:
                failures.append(f"depth {depth} is missing '{key}' in fresh or baseline")
                continue
            floor = base[key] * (1.0 - args.tolerance)
            ok = run[key] >= floor
            print(f"  depth {depth} ({run['chain']}): {label} speedup {run[key]:.3f} "
                  f"vs baseline {base[key]:.3f} (floor {floor:.3f}) "
                  f"{'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"depth {depth} {label} speedup {run[key]:.3f} fell below {floor:.3f} "
                    f"(baseline {base[key]:.3f}, tolerance {args.tolerance:.0%})")

    missing = set(base_by_depth) - {r["chain_depth"] for r in fresh.get("runs", [])}
    if missing:
        failures.append(f"fresh run is missing chain depths {sorted(missing)}")

    obs = fresh.get("obs")
    if obs is None:
        failures.append("fresh run has no 'obs' section (idle overhead unchecked)")
    else:
        idle = obs["idle_overhead_fraction"]
        ok = idle < args.obs_budget
        print(f"  obs idle overhead: {idle:.4%} (budget {args.obs_budget:.0%}) "
              f"{'ok' if ok else 'OVER BUDGET'}")
        print(f"  obs idle scope: {obs['idle_scope_ns']:.3f} ns, "
              f"active scope: {obs['active_scope_ns']:.3f} ns")
        if not ok:
            failures.append(
                f"idle observability overhead {idle:.4%} exceeds {args.obs_budget:.0%} budget")

    flight = fresh.get("flight")
    if flight is None:
        failures.append("fresh run has no 'flight' section (sampling overhead unchecked)")
    else:
        fraction = flight["overhead_fraction"]
        ok = fraction < args.obs_budget
        print(f"  flight sampling overhead: {fraction:.4%} (budget {args.obs_budget:.0%}) "
              f"{'ok' if ok else 'OVER BUDGET'}")
        print(f"  flight sample cost: {flight['sample_ns']:.0f} ns/snapshot over "
              f"{flight['records_per_minute']:.0f} records/minute")
        if not ok:
            failures.append(
                f"flight sampling overhead {fraction:.4%} exceeds {args.obs_budget:.0%} budget")

    telemetry = fresh.get("telemetry")
    if telemetry is None:
        failures.append("fresh run has no 'telemetry' section "
                        "(sketch/ring overhead and memory unchecked)")
    else:
        fraction = telemetry["overhead_fraction"]
        ok = fraction < args.obs_budget
        print(f"  telemetry recording overhead: {fraction:.4%} "
              f"(budget {args.obs_budget:.0%}) {'ok' if ok else 'OVER BUDGET'}")
        print(f"  telemetry costs: sketch add {telemetry['sketch_add_ns']:.1f} ns, "
              f"ring add {telemetry['ring_add_ns']:.1f} ns, "
              f"hurst push {telemetry['hurst_push_ns']:.1f} ns")
        if not ok:
            failures.append(
                f"active telemetry overhead {fraction:.4%} exceeds "
                f"{args.obs_budget:.0%} budget")
        mem_1x = telemetry["memory_bytes_1x"]
        mem_10x = telemetry["memory_bytes_10x"]
        flat = 0 < mem_10x <= mem_1x
        print(f"  telemetry footprint: {mem_1x} B @1h sim, {mem_10x} B @10h sim "
              f"{'ok (flat)' if flat else 'GREW WITH SIM LENGTH'}")
        if not flat:
            failures.append(
                f"telemetry memory grew with sim length ({mem_1x} B @1h -> "
                f"{mem_10x} B @10h); sketches/rings must be O(1) in packets")

    if failures:
        print("bench_compare: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
