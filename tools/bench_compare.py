#!/usr/bin/env python3
"""Compare a freshly generated BENCH_hotpath.json against the committed baseline.

Shared CI runners are too noisy to gate on absolute packets/sec, so the
comparison uses machine-independent quantities only:

  * per-chain batched/scalar speedup ratios (fresh must be within
    --tolerance, default 25%, of the committed value),
  * the observability budget: the idle GT_PROF_SCOPE overhead fraction
    must stay under --obs-budget (default 2%) in absolute terms, and
  * the flight-recorder budget: sampling one registry snapshot per
    sim-minute must also stay under --obs-budget relative to the hot-path
    cost of a paper-scale minute of traffic.

Exit status 0 when everything holds, 1 with a per-check report otherwise.

Usage:
    bench_compare.py --fresh build-release/BENCH_hotpath.json \
                     [--baseline BENCH_hotpath.json] [--tolerance 0.25]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="just-generated BENCH_hotpath.json")
    parser.add_argument("--baseline", default="BENCH_hotpath.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression (default: %(default)s)")
    parser.add_argument("--obs-budget", type=float, default=0.02,
                        help="max idle observability overhead fraction (default: %(default)s)")
    args = parser.parse_args()

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = []

    base_by_depth = {r["chain_depth"]: r for r in baseline.get("runs", [])}
    for run in fresh.get("runs", []):
        depth = run["chain_depth"]
        base = base_by_depth.get(depth)
        if base is None:
            print(f"  depth {depth}: no baseline entry, skipped")
            continue
        floor = base["speedup"] * (1.0 - args.tolerance)
        ok = run["speedup"] >= floor
        print(f"  depth {depth} ({run['chain']}): speedup {run['speedup']:.3f} "
              f"vs baseline {base['speedup']:.3f} (floor {floor:.3f}) "
              f"{'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(
                f"depth {depth} speedup {run['speedup']:.3f} fell below {floor:.3f} "
                f"(baseline {base['speedup']:.3f}, tolerance {args.tolerance:.0%})")

    missing = set(base_by_depth) - {r["chain_depth"] for r in fresh.get("runs", [])}
    if missing:
        failures.append(f"fresh run is missing chain depths {sorted(missing)}")

    obs = fresh.get("obs")
    if obs is None:
        failures.append("fresh run has no 'obs' section (idle overhead unchecked)")
    else:
        idle = obs["idle_overhead_fraction"]
        ok = idle < args.obs_budget
        print(f"  obs idle overhead: {idle:.4%} (budget {args.obs_budget:.0%}) "
              f"{'ok' if ok else 'OVER BUDGET'}")
        print(f"  obs idle scope: {obs['idle_scope_ns']:.3f} ns, "
              f"active scope: {obs['active_scope_ns']:.3f} ns")
        if not ok:
            failures.append(
                f"idle observability overhead {idle:.4%} exceeds {args.obs_budget:.0%} budget")

    flight = fresh.get("flight")
    if flight is None:
        failures.append("fresh run has no 'flight' section (sampling overhead unchecked)")
    else:
        fraction = flight["overhead_fraction"]
        ok = fraction < args.obs_budget
        print(f"  flight sampling overhead: {fraction:.4%} (budget {args.obs_budget:.0%}) "
              f"{'ok' if ok else 'OVER BUDGET'}")
        print(f"  flight sample cost: {flight['sample_ns']:.0f} ns/snapshot over "
              f"{flight['records_per_minute']:.0f} records/minute")
        if not ok:
            failures.append(
                f"flight sampling overhead {fraction:.4%} exceeds {args.obs_budget:.0%} budget")

    if failures:
        print("bench_compare: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
