#!/usr/bin/env python3
"""Compare a freshly generated BENCH_hotpath.json against the committed baseline.

Shared CI runners are too noisy to gate on absolute packets/sec, so the
comparison uses machine-independent quantities only:

  * hard speedup floors on the *committed baseline* (curated best-of-N
    numbers, so floors are meaningful there): batched/scalar >= 1.0 at
    the delivery-bound depths 1-3, and columnar-fused/scalar >= 2.0 at
    depths 1-3 and >= 1.0 at depth 4. Depth 4 is kernel-bound, not
    delivery-bound - the summary sink's Welford recurrence and the
    session tracker's per-flow hash update are serial per-record chains
    that no delivery tier can reorder - so parity, not 2x, is the honest
    floor there; what the floor defends is that the shipping tier
    (columnar-fused, what FleetEngine actually drives) never regresses
    below scalar again (it sat at 0.88x before fusion),
  * per-chain batched/scalar and columnar-fused/scalar speedup ratios
    (fresh must be within --tolerance, default 25%, of the committed
    value - fresh runs on shared runners are too noisy for hard floors),
  * the observability budget: the idle GT_PROF_SCOPE overhead fraction
    must stay under --obs-budget (default 2%) in absolute terms, and
  * the flight-recorder budget: sampling one registry snapshot per
    sim-minute must also stay under --obs-budget relative to the hot-path
    cost of a paper-scale minute of traffic.

Exit status 0 when everything holds, 1 with a per-check report otherwise.

Usage:
    bench_compare.py --fresh build-release/BENCH_hotpath.json \
                     [--baseline BENCH_hotpath.json] [--tolerance 0.25]
"""

import argparse
import json
import sys

# Hard floors checked against the committed baseline. Depths 1-3 are
# delivery-bound (per-record virtual dispatch and striding dominate), so
# batching must win outright and fusion must at least double throughput.
# Depth 4 is kernel-bound (serial Welford + per-flow hash chains), so the
# fused tier is held at parity with scalar - the regression CI must catch
# is the pre-fusion 0.88x, not a missing 2x that no delivery tier can buy.
BATCHED_FLOORS = {1: 1.0, 2: 1.0, 3: 1.0}
COLUMNAR_FLOORS = {1: 2.0, 2: 2.0, 3: 2.0, 4: 1.0}


def check_floors(baseline, failures):
    for run in baseline.get("runs", []):
        depth = run["chain_depth"]
        for label, key, floors in (
            ("batched", "speedup", BATCHED_FLOORS),
            ("columnar-fused", "columnar_speedup", COLUMNAR_FLOORS),
        ):
            floor = floors.get(depth)
            if floor is None:
                continue
            value = run.get(key)
            if value is None:
                failures.append(f"baseline depth {depth} has no '{key}' field")
                continue
            ok = value >= floor
            print(f"  baseline depth {depth}: {label} speedup {value:.3f} "
                  f"(floor {floor:.1f}) {'ok' if ok else 'BELOW FLOOR'}")
            if not ok:
                failures.append(
                    f"baseline depth {depth} {label} speedup {value:.3f} "
                    f"is below the committed floor {floor:.1f}")


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="just-generated BENCH_hotpath.json")
    parser.add_argument("--baseline", default="BENCH_hotpath.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression (default: %(default)s)")
    parser.add_argument("--obs-budget", type=float, default=0.02,
                        help="max idle observability overhead fraction (default: %(default)s)")
    args = parser.parse_args()

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = []

    check_floors(baseline, failures)

    base_by_depth = {r["chain_depth"]: r for r in baseline.get("runs", [])}
    for run in fresh.get("runs", []):
        depth = run["chain_depth"]
        base = base_by_depth.get(depth)
        if base is None:
            print(f"  depth {depth}: no baseline entry, skipped")
            continue
        for label, key in (("batched", "speedup"),
                           ("columnar-fused", "columnar_speedup")):
            if key not in run or key not in base:
                failures.append(f"depth {depth} is missing '{key}' in fresh or baseline")
                continue
            floor = base[key] * (1.0 - args.tolerance)
            ok = run[key] >= floor
            print(f"  depth {depth} ({run['chain']}): {label} speedup {run[key]:.3f} "
                  f"vs baseline {base[key]:.3f} (floor {floor:.3f}) "
                  f"{'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"depth {depth} {label} speedup {run[key]:.3f} fell below {floor:.3f} "
                    f"(baseline {base[key]:.3f}, tolerance {args.tolerance:.0%})")

    missing = set(base_by_depth) - {r["chain_depth"] for r in fresh.get("runs", [])}
    if missing:
        failures.append(f"fresh run is missing chain depths {sorted(missing)}")

    obs = fresh.get("obs")
    if obs is None:
        failures.append("fresh run has no 'obs' section (idle overhead unchecked)")
    else:
        idle = obs["idle_overhead_fraction"]
        ok = idle < args.obs_budget
        print(f"  obs idle overhead: {idle:.4%} (budget {args.obs_budget:.0%}) "
              f"{'ok' if ok else 'OVER BUDGET'}")
        print(f"  obs idle scope: {obs['idle_scope_ns']:.3f} ns, "
              f"active scope: {obs['active_scope_ns']:.3f} ns")
        if not ok:
            failures.append(
                f"idle observability overhead {idle:.4%} exceeds {args.obs_budget:.0%} budget")

    flight = fresh.get("flight")
    if flight is None:
        failures.append("fresh run has no 'flight' section (sampling overhead unchecked)")
    else:
        fraction = flight["overhead_fraction"]
        ok = fraction < args.obs_budget
        print(f"  flight sampling overhead: {fraction:.4%} (budget {args.obs_budget:.0%}) "
              f"{'ok' if ok else 'OVER BUDGET'}")
        print(f"  flight sample cost: {flight['sample_ns']:.0f} ns/snapshot over "
              f"{flight['records_per_minute']:.0f} records/minute")
        if not ok:
            failures.append(
                f"flight sampling overhead {fraction:.4%} exceeds {args.obs_budget:.0%} budget")

    if failures:
        print("bench_compare: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
