#!/usr/bin/env bash
# Runs clang-tidy over every first-party translation unit using the
# compile database exported by the tidy preset.
#
#   cmake --preset tidy
#   cmake --build --preset tidy        # generated headers, if any
#   tools/run_clang_tidy.sh [extra clang-tidy args...]
#
# Exits non-zero if clang-tidy emits ANY warning or error - not only the
# diagnostics escalated by WarningsAsErrors in .clang-tidy - so a new
# finding can never scroll past unnoticed in a CI log. A per-file finding
# summary is printed at the end, and the full log is kept at
# $GAMETRACE_TIDY_LOG (default: <build dir>/clang_tidy.log) for artifact
# upload.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${GAMETRACE_TIDY_BUILD_DIR:-${repo_root}/build-tidy}"
log_file="${GAMETRACE_TIDY_LOG:-${build_dir}/clang_tidy.log}"

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json not found." >&2
  echo "Run 'cmake --preset tidy' first (or set GAMETRACE_TIDY_BUILD_DIR)." >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "error: ${tidy} not found on PATH (set CLANG_TIDY to override)." >&2
  exit 2
fi

runner="$(command -v run-clang-tidy || true)"

cd "${repo_root}"
mapfile -t sources < <(git ls-files 'src/*.cc' 'tests/*.cc' 'bench/*.cc' 'examples/*.cc')
echo "clang-tidy over ${#sources[@]} translation units..."

mkdir -p "$(dirname "${log_file}")"
status=0
if [[ -n "${runner}" ]]; then
  "${runner}" -clang-tidy-binary "${tidy}" -p "${build_dir}" -quiet "$@" "${sources[@]}" \
    2>&1 | tee "${log_file}" || status=$?
else
  "${tidy}" -p "${build_dir}" --quiet "$@" "${sources[@]}" \
    2>&1 | tee "${log_file}" || status=$?
fi

# Findings are "path:line:col: warning|error: ...". The same header
# diagnostic surfaces once per including TU, so dedupe before counting.
finding_count="$(grep -E '^[^[:space:]].*:[0-9]+:[0-9]+: (warning|error):' "${log_file}" |
  sort -u | wc -l | tr -d ' ')"

echo
echo "==== clang-tidy per-file finding summary ===="
if [[ "${finding_count}" -eq 0 ]]; then
  echo "no findings"
else
  grep -E '^[^[:space:]].*:[0-9]+:[0-9]+: (warning|error):' "${log_file}" |
    sort -u |
    sed -E "s|^${repo_root}/||" |
    awk -F: '{counts[$1]++} END {for (f in counts) printf "%6d  %s\n", counts[f], f}' |
    sort -rn
  echo "---------------------------------------------"
  echo "total: ${finding_count} unique finding(s)  (full log: ${log_file})"
fi
echo "============================================="

if [[ "${status}" -ne 0 ]]; then
  echo "clang-tidy exited with status ${status}" >&2
  exit "${status}"
fi
if [[ "${finding_count}" -ne 0 ]]; then
  echo "failing: clang-tidy emitted ${finding_count} finding(s) (warnings count)" >&2
  exit 1
fi
