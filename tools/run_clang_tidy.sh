#!/usr/bin/env bash
# Runs clang-tidy over every first-party translation unit using the
# compile database exported by the tidy preset.
#
#   cmake --preset tidy
#   cmake --build --preset tidy        # generated headers, if any
#   tools/run_clang_tidy.sh [extra clang-tidy args...]
#
# Exits non-zero if clang-tidy reports any diagnostic escalated by
# WarningsAsErrors in .clang-tidy.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${GAMETRACE_TIDY_BUILD_DIR:-${repo_root}/build-tidy}"

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json not found." >&2
  echo "Run 'cmake --preset tidy' first (or set GAMETRACE_TIDY_BUILD_DIR)." >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "error: ${tidy} not found on PATH (set CLANG_TIDY to override)." >&2
  exit 2
fi

runner="$(command -v run-clang-tidy || true)"

cd "${repo_root}"
mapfile -t sources < <(git ls-files 'src/*.cc' 'tests/*.cc' 'bench/*.cc' 'examples/*.cc')
echo "clang-tidy over ${#sources[@]} translation units..."

if [[ -n "${runner}" ]]; then
  "${runner}" -clang-tidy-binary "${tidy}" -p "${build_dir}" -quiet "$@" "${sources[@]}"
else
  "${tidy}" -p "${build_dir}" --quiet "$@" "${sources[@]}"
fi
