#!/usr/bin/env python3
"""gt_lint: repo-specific static analysis for the gametrace tree.

Encodes invariants that generic clang-tidy checks cannot express, so the
determinism and locking contracts stay compile-time artifacts:

  nondet-call       No nondeterminism sources (rand/time()/random_device/
                    wall clocks) inside report/merge/emit paths in
                    src/{core,stats,trace,obs}. Those paths feed the
                    bit-identical-across-workers outputs; one wall-clock
                    read there silently breaks the reproduction.
  nondet-iteration  No iteration over unordered containers (range-for or
                    begin()/end()) in the same report/merge/emit paths:
                    hash-order is seed- and libstdc++-version-dependent,
                    so it must never reach a fold or serialization order.
                    Order-independent folds (commutative integer sums)
                    carry a `gt-lint: allow(...)` justification comment.
  sink-tier         CaptureSink subclasses keep the three delivery tiers
                    coherent: a sink overriding OnColumns must override
                    OnBatch too (otherwise AoS producers silently fall to
                    the per-packet loop while columnar producers take the
                    kernel - the tiers must stay equivalent AND comparable
                    in cost), and every tier method must be spelled
                    `override`/`final` so hiding never masquerades as
                    overriding.
  raw-contract      GT_CHECK/GT_DCHECK instead of raw assert(), and no
                    bare `throw` of foreign types in src/ - only the
                    environmental error types (net::PcapError,
                    trace::TraceError) and the contract machinery's own
                    ContractViolation may be thrown (DESIGN.md
                    "Correctness tooling").
  raw-mutex         Mutex members must be core::Mutex (and guards
                    core::MutexLock, condvars core::CondVar) from
                    src/core/thread_annotations.h, never the std types -
                    std primitives are invisible to Clang's Thread Safety
                    Analysis, so a raw std::mutex rots the annotation
                    layer.

Engines: with python3-clang + libclang installed, files are analyzed on
the real Clang AST (`--engine libclang`); otherwise a built-in lexer
engine (`--engine lex`) implements the same rules on comment/string-
stripped source. `--engine auto` (default) prefers libclang and falls
back per-file on parse failure, so the tool runs everywhere, including
containers with no LLVM at all.

Findings diff against a committed baseline (tools/gt_lint_baseline.txt):
new findings fail, and entries that no longer fire also fail until the
baseline is shrunk (`--update-baseline`), so enforcement only ratchets.

Suppressions: `// gt-lint: allow(<rule>) <why>` on the finding line or
the line above. The justification text is mandatory.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import re
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Shared rule tables
# ---------------------------------------------------------------------------

RULES = ("nondet-call", "nondet-iteration", "sink-tier", "raw-contract", "raw-mutex")

# Directories whose merge/emit paths must be deterministic.
DETERMINISM_DIRS = ("src/core", "src/stats", "src/trace", "src/obs")

# Function names that constitute report/merge/emit paths. The second
# alternation row covers the streaming-sketch subsystem (quantile sketch
# collapse, tiered-ring fold/advance, online-Hurst push): those paths feed
# merged snapshots directly, so hash-order or wall-clock reads there break
# worker-count invariance just as surely as in a Write/Merge.
EMIT_FUNC_RE = re.compile(
    r"^(Merge\w*|Finish\w*|Estimate\w*|Report\w*|Write\w*|Append\w*|To[A-Z]\w*|"
    r"Emit\w*|Dump\w*|Export\w*|Serialize\w*|Flush\w*|"
    r"Quantile\w*|Collapse\w*|Fold\w*|Advance\w*|Push\w*|Evict\w*)$"
)

# Calls that read nondeterministic state. Matched as call expressions
# (optionally std::/:: qualified, never member access).
NONDET_CALLS = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "random",
    "time", "clock", "gettimeofday", "clock_gettime", "localtime", "gmtime",
}
# Type names that are nondeterminism sources wherever they appear in an
# emit path (construction or clock reads).
NONDET_TYPES = {"random_device", "system_clock", "high_resolution_clock"}

UNORDERED_RE = re.compile(r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\b")

SINK_TIER_METHODS = ("OnPacket", "OnBatch", "OnColumns")

# Exception types src/ code may throw (environmental errors + the contract
# machinery itself). Compared against the last :: component.
THROW_ALLOWLIST = {"PcapError", "TraceError", "ContractViolation"}

RAW_SYNC_TYPES = (
    "std::mutex", "std::timed_mutex", "std::recursive_mutex",
    "std::recursive_timed_mutex", "std::shared_mutex", "std::shared_timed_mutex",
    "std::condition_variable", "std::condition_variable_any",
    "std::lock_guard", "std::unique_lock", "std::scoped_lock", "std::shared_lock",
)
# The annotated wrappers themselves are the one place std primitives live.
RAW_SYNC_EXEMPT_FILES = ("src/core/thread_annotations.h",)

SUPPRESS_RE = re.compile(r"gt-lint:\s*allow\(([\w,\- ]+)\)\s*(\S.*)?")


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    message: str
    anchor: str  # normalized source line, for the baseline fingerprint

    def fingerprint(self) -> str:
        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{self.anchor}".encode()
        ).hexdigest()
        return digest[:12]

    def baseline_key(self) -> str:
        return f"{self.rule}|{self.path}|{self.fingerprint()}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Source preparation shared by both engines
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blanks comments, string and char literals, preserving offsets/newlines."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == '"':
            # Raw strings: R"delim( ... )delim"
            if i > 0 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                m = re.match(r'R"([^(\s\\]{0,16})\(', text[i - 1 : i + 20])
                if m:
                    delim = m.group(1)
                    close = f"){delim}\""
                    j = text.find(close, i + 1)
                    j = n - len(close) if j < 0 else j
                    end = j + len(close)
                    for k in range(i, end):
                        if out[k] != "\n":
                            out[k] = " "
                    i = end
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            for k in range(i, min(j + 1, n)):
                out[k] = " "
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            for k in range(i, min(j + 1, n)):
                out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def collect_suppressions(text: str) -> dict[int, tuple[set[str], bool]]:
    """Maps 1-based line numbers to (rules allowed there, has-justification).

    A trailing directive covers its own line. A standalone comment line
    covers the following statement: every line up to and including the
    first one whose code ends in `;`, `{` or `}` (capped at 8 lines), so
    a wrapped call needs one directive, not one per continuation line.
    """
    allowed: dict[int, tuple[set[str], bool]] = {}
    lines = text.splitlines()

    def cover(target: int, rules: set[str], justified: bool) -> None:
        prev_rules, prev_just = allowed.get(target, (set(), True))
        allowed[target] = (prev_rules | rules, prev_just and justified)

    for lineno, line in enumerate(lines, start=1):
        comment = line.find("//")
        if comment < 0:
            continue
        m = SUPPRESS_RE.search(line[comment:])
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        justified = bool(m.group(2))
        code_before = line[:comment].strip()
        if code_before:
            cover(lineno, rules, justified)
            continue
        for target in range(lineno + 1, min(lineno + 9, len(lines) + 1)):
            cover(target, rules, justified)
            code = lines[target - 1]
            cut = code.find("//")
            code = (code if cut < 0 else code[:cut]).rstrip()
            if code.endswith((";", "{", "}")):
                break
    return allowed


def apply_suppressions(
    findings: list[Finding], per_file_allow: dict[str, dict[int, tuple[set[str], bool]]]
) -> tuple[list[Finding], list[Finding]]:
    kept: list[Finding] = []
    bad_suppressions: list[Finding] = []
    for f in findings:
        allow = per_file_allow.get(f.path, {}).get(f.line)
        if allow and (f.rule in allow[0] or "all" in allow[0]):
            if not allow[1]:
                bad_suppressions.append(
                    Finding(f.rule, f.path, f.line,
                            "suppression without justification text "
                            "(write `// gt-lint: allow(rule) <why>`)", f.anchor)
                )
            continue
        kept.append(f)
    return kept, bad_suppressions


# ---------------------------------------------------------------------------
# Lex engine: function mapping + rule scans over stripped source
# ---------------------------------------------------------------------------

KEYWORDS_NOT_FUNCTIONS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "static_assert", "defined", "assert",
    "new", "delete", "throw", "case", "do", "else", "operator", "requires",
}

IDENT_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")


@dataclass
class FunctionSpan:
    name: str
    body_start: int  # offset of '{'
    body_end: int  # offset past matching '}'


def _match_forward(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Offset past the bracket matching text[start] (which is open_ch)."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def find_function_spans(clean: str) -> list[FunctionSpan]:
    """Finds function definitions: `name ( params ) [qualifiers] { body }`.

    Heuristic but resilient: candidate = identifier immediately before a
    '(' whose matching ')' is followed (after qualifiers / member-init
    lists / trailing return types) by '{'. Control-flow keywords and
    macro-style ALL_CAPS names are skipped.
    """
    spans: list[FunctionSpan] = []
    for m in IDENT_CALL_RE.finditer(clean):
        name = m.group(1)
        if name in KEYWORDS_NOT_FUNCTIONS:
            continue
        if name.isupper() and "_" in name:  # macro invocation (GT_CHECK, ...)
            continue
        open_paren = m.end() - 1
        after_params = _match_forward(clean, open_paren, "(", ")")
        i = after_params
        n = len(clean)
        body = -1
        while i < n:
            c = clean[i]
            if c.isspace():
                i += 1
            elif clean.startswith(("const", "noexcept", "override", "final", "mutable"), i) and \
                    not (i + 8 < n and clean[i:i + 9] == "constexpr"):
                i += len(next(k for k in ("noexcept", "override", "mutable", "final", "const")
                              if clean.startswith(k, i)))
                if i < n and clean[i] == "(":  # noexcept(...)
                    i = _match_forward(clean, i, "(", ")")
            elif c == "-" and clean.startswith("->", i):  # trailing return type
                i += 2
                while i < n and clean[i] not in "{;":
                    if clean[i] == "(":
                        i = _match_forward(clean, i, "(", ")")
                    elif clean[i] == "<":
                        i += 1  # angle matching is unreliable; scan on
                    else:
                        i += 1
            elif c == ":":  # constructor member-init list
                i += 1
                while i < n:
                    if clean[i] == "(":
                        i = _match_forward(clean, i, "(", ")")
                    elif clean[i] == "{":
                        prev = clean[:i].rstrip()
                        # `b_{y}` brace-init vs the body brace: init braces
                        # directly follow an identifier or '>' or ')'.
                        if prev and (prev[-1].isalnum() or prev[-1] in "_>)"):
                            i = _match_forward(clean, i, "{", "}")
                        else:
                            break
                    elif clean[i] == ";":
                        break
                    else:
                        i += 1
                if i < n and clean[i] == "{":
                    body = i
                break
            elif c == "{":
                body = i
                break
            else:
                break
        if body < 0:
            continue
        spans.append(FunctionSpan(name, body, _match_forward(clean, body, "{", "}")))
    return spans


def enclosing_function(spans: list[FunctionSpan], offset: int) -> FunctionSpan | None:
    best: FunctionSpan | None = None
    for s in spans:
        if s.body_start <= offset < s.body_end:
            if best is None or s.body_start > best.body_start:
                best = s  # innermost
    return best


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def line_text(text: str, offset: int) -> str:
    start = text.rfind("\n", 0, offset) + 1
    end = text.find("\n", offset)
    end = len(text) if end < 0 else end
    return text[start:end]


def normalize_anchor(line: str) -> str:
    return re.sub(r"\s+", " ", line).strip()


class LexEngine:
    """Rule implementation over comment/string-stripped source text."""

    name = "lex"

    def __init__(self, root: str):
        self.root = root
        self._member_cache: dict[str, set[str]] = {}

    # -- helpers ----------------------------------------------------------

    def _read_clean(self, relpath: str) -> tuple[str, str] | None:
        full = os.path.join(self.root, relpath)
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                raw = fh.read()
        except OSError:
            return None
        return raw, strip_comments_and_strings(raw)

    def _unordered_members(self, relpath: str) -> set[str]:
        """Member/variable names with unordered container types, from this
        file plus its .h/.cc sibling (members live in headers, iteration in
        the .cc)."""
        stem, _ = os.path.splitext(relpath)
        names: set[str] = set()
        for candidate in (stem + ".h", stem + ".cc", relpath):
            if candidate in self._member_cache:
                names |= self._member_cache[candidate]
                continue
            got = self._read_clean(candidate)
            found: set[str] = set()
            if got is not None:
                _, clean = got
                for m in re.finditer(
                    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<", clean
                ):
                    # Skip the template argument list, then take the
                    # declared name.
                    i = m.end() - 1
                    depth = 0
                    while i < len(clean):
                        if clean[i] == "<":
                            depth += 1
                        elif clean[i] == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        i += 1
                    tail = clean[i + 1 : i + 160]
                    dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:;|=|\{|,|\))", tail)
                    if dm:
                        found.add(dm.group(1))
            self._member_cache[candidate] = found
            names |= found
        return names

    # -- rules ------------------------------------------------------------

    def lint_file(self, relpath: str) -> list[Finding]:
        got = self._read_clean(relpath)
        if got is None:
            return []
        raw, clean = got
        findings: list[Finding] = []
        in_det_dir = any(
            relpath.startswith(d + "/") or os.path.dirname(relpath) == d
            for d in DETERMINISM_DIRS
        )
        spans = find_function_spans(clean)

        if in_det_dir:
            findings += self._rule_nondet_call(relpath, raw, clean, spans)
            findings += self._rule_nondet_iteration(relpath, raw, clean, spans)
        findings += self._rule_sink_tier(relpath, raw, clean)
        findings += self._rule_raw_contract(relpath, raw, clean)
        findings += self._rule_raw_mutex(relpath, raw, clean)
        return findings

    def _emit_spans(self, spans: list[FunctionSpan]) -> list[FunctionSpan]:
        return [s for s in spans if EMIT_FUNC_RE.match(s.name)]

    def _rule_nondet_call(self, relpath, raw, clean, spans) -> list[Finding]:
        findings = []
        for span in self._emit_spans(spans):
            body = clean[span.body_start : span.body_end]
            for m in IDENT_CALL_RE.finditer(body):
                callee = m.group(1)
                if callee not in NONDET_CALLS:
                    continue
                at = span.body_start + m.start()
                before = clean[:at].rstrip()
                # Member access (x.time(), p->clock()) is a different API;
                # qualification by std:: or :: stays banned.
                if before.endswith((".", "->")):
                    continue
                if before.endswith("::") and not (
                    before.endswith("std::") or re.search(r"(?<![\w:])::$", before)
                ):
                    continue
                findings.append(Finding(
                    "nondet-call", relpath, line_of(clean, at),
                    f"nondeterminism source `{callee}()` inside report/merge/emit "
                    f"path `{span.name}` - outputs must be a pure function of "
                    "(config, seed); use sim::Rng streams",
                    normalize_anchor(line_text(raw, at))))
            for t in NONDET_TYPES:
                for m in re.finditer(rf"\b{t}\b", body):
                    at = span.body_start + m.start()
                    findings.append(Finding(
                        "nondet-call", relpath, line_of(clean, at),
                        f"nondeterministic type/clock `{t}` inside report/merge/"
                        f"emit path `{span.name}`",
                        normalize_anchor(line_text(raw, at))))
        return findings

    def _rule_nondet_iteration(self, relpath, raw, clean, spans) -> list[Finding]:
        findings = []
        members = self._unordered_members(relpath)
        if not members:
            return findings
        member_re = re.compile(
            r"\b(" + "|".join(re.escape(m) for m in sorted(members)) + r")\b"
        )
        for span in self._emit_spans(spans):
            body = clean[span.body_start : span.body_end]
            for m in re.finditer(r"\bfor\s*\(", body):
                close = _match_forward(body, m.end() - 1, "(", ")")
                header = body[m.end() : close - 1]
                if ":" in header and member_re.search(header.split(":", 1)[1]):
                    at = span.body_start + m.start()
                    findings.append(Finding(
                        "nondet-iteration", relpath, line_of(clean, at),
                        f"range-for over unordered container in `{span.name}` - "
                        "hash order is not deterministic; iterate a sorted view "
                        "or justify order-independence with a gt-lint allow",
                        normalize_anchor(line_text(raw, at))))
            for m in re.finditer(
                r"\b([A-Za-z_]\w*)\s*\.\s*c?(?:begin|end)\s*\(", body
            ):
                if m.group(1) not in members:
                    continue
                at = span.body_start + m.start()
                findings.append(Finding(
                    "nondet-iteration", relpath, line_of(clean, at),
                    f"begin()/end() on unordered container `{m.group(1)}` in "
                    f"`{span.name}` - hash-order iteration in an emit/merge path",
                    normalize_anchor(line_text(raw, at))))
        return findings

    def _rule_sink_tier(self, relpath, raw, clean) -> list[Finding]:
        findings = []
        for m in re.finditer(
            r"\b(?:class|struct)\s+([A-Za-z_]\w*)"
            r"(?:\s+final)?\s*:\s*([^{;]*?CaptureSink[^{;]*)\{",
            clean,
        ):
            cls = m.group(1)
            body_start = m.end() - 1
            body_end = _match_forward(clean, body_start, "{", "}")
            body = clean[body_start:body_end]
            decls: dict[str, tuple[int, str]] = {}
            for dm in re.finditer(
                r"\bvoid\s+(OnPacket|OnBatch|OnColumns)\s*\(", body
            ):
                close = _match_forward(body, dm.end() - 1, "(", ")")
                rest = body[close : body.find("\n", close) if body.find("\n", close) > 0 else len(body)]
                # Qualifier run up to the body/semicolon.
                stop = len(body)
                for ch_i in range(close, len(body)):
                    if body[ch_i] in "{;":
                        stop = ch_i
                        break
                decls[dm.group(1)] = (body_start + dm.start(), body[close:stop])
            if not decls:
                continue
            for name, (at, quals) in decls.items():
                if "override" not in quals and "final" not in quals:
                    findings.append(Finding(
                        "sink-tier", relpath, line_of(clean, at),
                        f"{cls}::{name} re-declares a CaptureSink delivery tier "
                        "without `override` - hiding would silently fork the "
                        "tier contract",
                        normalize_anchor(line_text(raw, at))))
            if "OnColumns" in decls and "OnBatch" not in decls:
                at = decls["OnColumns"][0]
                findings.append(Finding(
                    "sink-tier", relpath, line_of(clean, at),
                    f"{cls} overrides OnColumns but not OnBatch - AoS batches "
                    "would fall to the per-packet loop while columnar batches "
                    "take the kernel; implement OnBatch (or route it through "
                    "the columnar path) to keep the three tiers coherent",
                    normalize_anchor(line_text(raw, at))))
        return findings

    def _rule_raw_contract(self, relpath, raw, clean) -> list[Finding]:
        findings = []
        for m in re.finditer(r"(?<![\w.])assert\s*\(", clean):
            before = clean[:m.start()]
            if before.endswith(("static_", "_")):
                continue
            findings.append(Finding(
                "raw-contract", relpath, line_of(clean, m.start()),
                "raw assert() - use GT_CHECK (always-on contract) or GT_DCHECK "
                "(hot-path, sanitizer-enforced) from core/check.h",
                normalize_anchor(line_text(raw, m.start()))))
        for m in re.finditer(r"\bthrow\b", clean):
            tail = clean[m.end() : m.end() + 200].lstrip()
            if tail.startswith((";", ")")):  # rethrow / exception spec
                continue
            tm = re.match(r"([A-Za-z_][\w:]*)", tail)
            if not tm:
                continue
            thrown = tm.group(1).split("::")[-1]
            if thrown in THROW_ALLOWLIST:
                continue
            findings.append(Finding(
                "raw-contract", relpath, line_of(clean, m.start()),
                f"bare throw of `{tm.group(1)}` - invariant violations route "
                "through GT_CHECK, environmental errors through "
                "net::PcapError/trace::TraceError",
                normalize_anchor(line_text(raw, m.start()))))
        return findings

    def _rule_raw_mutex(self, relpath, raw, clean) -> list[Finding]:
        if relpath in RAW_SYNC_EXEMPT_FILES:
            return []
        findings = []
        for sync_type in RAW_SYNC_TYPES:
            pattern = re.escape(sync_type).replace("std\\:\\:", r"std\s*::\s*")
            for m in re.finditer(rf"\b{pattern}\b", clean):
                findings.append(Finding(
                    "raw-mutex", relpath, line_of(clean, m.start()),
                    f"`{sync_type}` is invisible to Thread Safety Analysis - "
                    "use core::Mutex / core::MutexLock / core::CondVar from "
                    "core/thread_annotations.h",
                    normalize_anchor(line_text(raw, m.start()))))
        return findings


# ---------------------------------------------------------------------------
# libclang engine
# ---------------------------------------------------------------------------

class LibclangUnavailable(Exception):
    pass


class LibclangEngine:
    """Same rules, evaluated on the Clang AST via python clang.cindex."""

    name = "libclang"

    def __init__(self, root: str):
        self.root = root
        try:
            from clang import cindex  # noqa: PLC0415
        except ImportError as exc:
            raise LibclangUnavailable(f"python clang bindings not importable: {exc}")
        self.cindex = cindex
        try:
            self.index = cindex.Index.create()
        except Exception as exc:  # library not found / version mismatch
            raise LibclangUnavailable(f"libclang not loadable: {exc}")
        self._lex = LexEngine(root)

    def lint_file(self, relpath: str) -> list[Finding]:
        try:
            return self._lint_ast(relpath)
        except Exception as exc:
            print(f"note: libclang failed on {relpath} ({exc}); lex fallback",
                  file=sys.stderr)
            return self._lex.lint_file(relpath)

    # -- AST walk ---------------------------------------------------------

    def _parse(self, relpath: str):
        cindex = self.cindex
        full = os.path.join(self.root, relpath)
        args = ["-x", "c++", "-std=c++20", f"-I{os.path.join(self.root, 'src')}",
                "-Wno-everything"]
        tu = self.index.parse(
            full, args=args,
            options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        return tu

    def _in_file(self, cursor, relpath: str) -> bool:
        loc = cursor.location
        if loc.file is None:
            return False
        return os.path.abspath(loc.file.name) == os.path.abspath(
            os.path.join(self.root, relpath))

    def _finding(self, rule, relpath, cursor, message) -> Finding:
        loc = cursor.location
        try:
            with open(os.path.join(self.root, relpath), encoding="utf-8",
                      errors="replace") as fh:
                lines = fh.read().splitlines()
            anchor = normalize_anchor(lines[loc.line - 1]) if loc.line <= len(lines) else ""
        except OSError:
            anchor = ""
        return Finding(rule, relpath, loc.line, message, anchor)

    def _lint_ast(self, relpath: str) -> list[Finding]:
        ck = self.cindex.CursorKind
        tu = self._parse(relpath)
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError(f"fatal parse diagnostics: {fatal[0].spelling}")

        findings: list[Finding] = []
        in_det_dir = any(
            relpath.startswith(d + "/") or os.path.dirname(relpath) == d
            for d in DETERMINISM_DIRS)

        raw = open(os.path.join(self.root, relpath), encoding="utf-8",
                   errors="replace").read()
        clean = strip_comments_and_strings(raw)

        def walk(cursor, emit_fn=None):
            for child in cursor.get_children():
                child_emit = emit_fn
                if child.kind in (ck.CXX_METHOD, ck.FUNCTION_DECL, ck.CONSTRUCTOR,
                                  ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE):
                    child_emit = child.spelling if (
                        child.is_definition() and EMIT_FUNC_RE.match(child.spelling or "")
                    ) else None
                if self._in_file(child, relpath):
                    self._visit(child, child_emit, relpath, in_det_dir, findings)
                walk(child, child_emit)

        walk(tu.cursor)

        # Macro-level rules the AST hides (assert expands away) and the
        # token-level mutex rule run on the lexer's representation - the
        # semantics are textual anyway.
        findings += self._lex._rule_raw_contract(relpath, raw, clean)
        findings += self._lex._rule_raw_mutex(relpath, raw, clean)
        findings += self._sink_tier(tu, relpath)
        return findings

    def _visit(self, cursor, emit_fn, relpath, in_det_dir, findings):
        ck = self.cindex.CursorKind
        if not in_det_dir or emit_fn is None:
            return
        if cursor.kind == ck.CALL_EXPR:
            callee = cursor.spelling or ""
            if callee in NONDET_CALLS:
                ref = cursor.referenced
                is_member = ref is not None and ref.kind == ck.CXX_METHOD
                if not is_member:
                    findings.append(self._finding(
                        "nondet-call", relpath, cursor,
                        f"nondeterminism source `{callee}()` inside report/merge/"
                        f"emit path `{emit_fn}` - outputs must be a pure function "
                        "of (config, seed); use sim::Rng streams"))
        if cursor.kind in (ck.TYPE_REF, ck.DECL_REF_EXPR):
            last = (cursor.spelling or "").split("::")[-1]
            if last in NONDET_TYPES:
                findings.append(self._finding(
                    "nondet-call", relpath, cursor,
                    f"nondeterministic type/clock `{last}` inside report/merge/"
                    f"emit path `{emit_fn}`"))
        if cursor.kind == ck.CXX_FOR_RANGE_STMT:
            children = list(cursor.get_children())
            if children:
                range_expr = children[-2] if len(children) >= 2 else children[0]
                t = range_expr.type.get_canonical().spelling if range_expr.type else ""
                if "unordered_" in t:
                    findings.append(self._finding(
                        "nondet-iteration", relpath, cursor,
                        f"range-for over `{t}` in `{emit_fn}` - hash order is "
                        "not deterministic; iterate a sorted view or justify "
                        "order-independence with a gt-lint allow"))
        if cursor.kind == ck.CALL_EXPR and cursor.spelling in (
                "begin", "end", "cbegin", "cend"):
            base = next(iter(cursor.get_children()), None)
            base_t = ""
            if base is not None:
                for sub in base.walk_preorder():
                    if sub.type and "unordered_" in sub.type.get_canonical().spelling:
                        base_t = sub.type.get_canonical().spelling
                        break
            if base_t:
                findings.append(self._finding(
                    "nondet-iteration", relpath, cursor,
                    f"begin()/end() on `{base_t}` in `{emit_fn}` - hash-order "
                    "iteration in an emit/merge path"))

    def _sink_tier(self, tu, relpath) -> list[Finding]:
        ck = self.cindex.CursorKind
        findings: list[Finding] = []

        def derives_capture_sink(cursor) -> bool:
            for base in cursor.get_children():
                if base.kind != ck.CXX_BASE_SPECIFIER:
                    continue
                if "CaptureSink" in base.type.spelling:
                    return True
                ref = base.referenced
                if ref is not None and ref.kind in (ck.CLASS_DECL, ck.STRUCT_DECL):
                    if derives_capture_sink(ref):
                        return True
            return False

        def scan(cursor):
            for child in cursor.get_children():
                if child.kind in (ck.CLASS_DECL, ck.STRUCT_DECL) and \
                        child.is_definition() and self._in_file(child, relpath) and \
                        child.spelling != "CaptureSink" and derives_capture_sink(child):
                    decls = {}
                    for method in child.get_children():
                        if method.kind == ck.CXX_METHOD and \
                                method.spelling in SINK_TIER_METHODS:
                            tokens = {t.spelling for t in method.get_tokens()}
                            decls[method.spelling] = (method, tokens)
                    for name, (method, tokens) in decls.items():
                        if "override" not in tokens and "final" not in tokens:
                            findings.append(self._finding(
                                "sink-tier", relpath, method,
                                f"{child.spelling}::{name} re-declares a "
                                "CaptureSink delivery tier without `override` - "
                                "hiding would silently fork the tier contract"))
                    if "OnColumns" in decls and "OnBatch" not in decls:
                        findings.append(self._finding(
                            "sink-tier", relpath, decls["OnColumns"][0],
                            f"{child.spelling} overrides OnColumns but not "
                            "OnBatch - AoS batches would fall to the per-packet "
                            "loop while columnar batches take the kernel; "
                            "implement OnBatch (or route it through the columnar "
                            "path) to keep the three tiers coherent"))
                scan(child)

        scan(tu.cursor)
        return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def discover_files(root: str) -> list[str]:
    files = []
    for dirpath, dirnames, filenames in os.walk(os.path.join(root, "src")):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith((".h", ".cc")):
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                files.append(rel.replace(os.sep, "/"))
    return files


def load_baseline(path: str) -> list[str]:
    if not os.path.exists(path):
        return []
    keys = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                keys.append(line.split(" ", 1)[0])
    return keys


def write_baseline(path: str, findings: list[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            "# gt_lint baseline: grandfathered findings, one per line as\n"
            "#   <rule>|<path>|<fingerprint>  # <location hint>\n"
            "# This file may only SHRINK. Fix a finding, then run\n"
            "#   tools/gt_lint.py --update-baseline\n"
            "# Adding entries is not a supported workflow: new code must be\n"
            "# clean or carry a justified `// gt-lint: allow(rule) why`.\n")
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
            fh.write(f"{f.baseline_key()}  # {f.path}:{f.line}\n")


def make_engine(kind: str, root: str):
    if kind == "lex":
        return LexEngine(root)
    if kind == "libclang":
        return LibclangEngine(root)  # raises LibclangUnavailable
    try:
        return LibclangEngine(root)
    except LibclangUnavailable as exc:
        print(f"note: {exc}; using built-in lex engine", file=sys.stderr)
        return LexEngine(root)


def run(root: str, engine_kind: str, baseline_path: str, paths: list[str],
        update_baseline: bool, report_path: str | None) -> int:
    engine = make_engine(engine_kind, root)
    files = paths or discover_files(root)

    findings: list[Finding] = []
    per_file_allow: dict[str, dict[int, tuple[set[str], bool]]] = {}
    for rel in files:
        full = os.path.join(root, rel)
        if not os.path.exists(full):
            print(f"warning: {rel} does not exist, skipped", file=sys.stderr)
            continue
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                per_file_allow[rel] = collect_suppressions(fh.read())
        except OSError:
            per_file_allow[rel] = {}
        findings.extend(engine.lint_file(rel))

    findings, bad_suppressions = apply_suppressions(findings, per_file_allow)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if update_baseline:
        write_baseline(baseline_path, findings)
        print(f"baseline updated: {len(findings)} grandfathered finding(s)")
        return 0

    baseline = load_baseline(baseline_path)
    baseline_left = list(baseline)
    new_findings: list[Finding] = []
    for f in findings:
        key = f.baseline_key()
        if key in baseline_left:
            baseline_left.remove(key)
        else:
            new_findings.append(f)

    lines: list[str] = []
    lines.append(f"gt_lint ({engine.name} engine): {len(files)} file(s), "
                 f"{len(findings)} finding(s), "
                 f"{len(findings) - len(new_findings)} baselined, "
                 f"{len(new_findings)} new")
    for f in new_findings:
        lines.append(f.render())
    for f in bad_suppressions:
        lines.append(f.render())
    if baseline_left:
        lines.append(
            f"error: {len(baseline_left)} baseline entr(y/ies) no longer fire - "
            "the baseline may only shrink; run tools/gt_lint.py "
            "--update-baseline and commit:")
        for key in baseline_left:
            lines.append(f"  stale: {key}")

    out = "\n".join(lines)
    print(out)
    if report_path:
        os.makedirs(os.path.dirname(report_path) or ".", exist_ok=True)
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write(out + "\n")

    if new_findings or bad_suppressions or baseline_left:
        return 1
    print("gt_lint: OK")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: tools/gt_lint_baseline.txt)")
    parser.add_argument("--engine", choices=("auto", "libclang", "lex"),
                        default="auto")
    parser.add_argument("--report", default=None,
                        help="also write the report to this file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current findings")
    parser.add_argument("paths", nargs="*",
                        help="repo-relative files to lint (default: src/**)")
    args = parser.parse_args(argv)

    baseline = args.baseline or os.path.join(args.root, "tools", "gt_lint_baseline.txt")
    try:
        return run(args.root, args.engine, baseline,
                   [p.replace(os.sep, "/") for p in args.paths],
                   args.update_baseline, args.report)
    except LibclangUnavailable as exc:
        print(f"error: --engine libclang requested but {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
