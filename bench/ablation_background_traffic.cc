// Ablation: background bulk transfers sharing the game's bottleneck
// (paper section IV-A).
//
// "Any further degradation caused by additional players and/or background
// traffic will simply cause players to quit playing, reducing the load
// back to the tolerable level."
//
// Sweep web-download cross traffic through the same NAT device carrying
// the game: game loss climbs with background load; with QoE enabled the
// players react exactly as the paper predicts.
#include "common.h"

#include "game/qoe.h"
#include "router/device_stats.h"
#include "router/nat_device.h"
#include "sim/simulator.h"
#include "trace/filter.h"
#include "web/web_traffic.h"

namespace {

struct Outcome {
  double game_in_loss = 0.0;
  double web_share = 0.0;  // fraction of forwarded packets that were web
  std::uint64_t quits = 0;
  double final_players = 0.0;
};

Outcome RunMix(double web_flow_rate, bool qoe_enabled, double duration) {
  using namespace gametrace;
  sim::Simulator simulator;

  router::NatDevice::Config device;
  device.mean_capacity_pps = 1600.0;  // fine for the game alone
  device.episode_mean_interval = 0.0;
  router::NatDevice nat(simulator, device);

  auto game_cfg = game::GameConfig::ScaledDefaults(duration);
  game_cfg.maps.map_duration = duration + 60.0;
  game::CsServer server(simulator, game_cfg, nat.injector());

  std::uint64_t web_forwarded = 0;
  std::uint64_t total_forwarded = 0;

  std::unique_ptr<game::QoeMonitor> qoe;
  if (qoe_enabled) {
    qoe = std::make_unique<game::QoeMonitor>(
        simulator, game::QoeMonitor::Config{}, sim::Rng(99),
        [&server](net::Ipv4Address ip, std::uint16_t port) {
          server.DisconnectByEndpoint(ip, port, true);
        });
    qoe->Start();
  }

  const auto is_web = [](const net::PacketRecord& r) {
    return r.kind == net::PacketKind::kWebData || r.kind == net::PacketKind::kWebAck;
  };
  nat.SetDeliverCallback([&](const net::PacketRecord& r, router::Segment) {
    ++total_forwarded;
    if (is_web(r)) {
      ++web_forwarded;
      return;
    }
    if (qoe) qoe->OnDelivered(r);
  });
  nat.SetLossCallback([&](const net::PacketRecord& r, router::Segment) {
    if (!is_web(r) && qoe) qoe->OnLost(r);
  });

  std::unique_ptr<web::WebTrafficSource> web_source;
  if (web_flow_rate > 0.0) {
    web::WebConfig web_cfg;
    web_cfg.flow_arrival_rate = web_flow_rate;
    web_source = std::make_unique<web::WebTrafficSource>(simulator, web_cfg, nat.injector());
    web_source->Start();
  }

  nat.Start();
  server.Start();
  simulator.RunUntil(duration);

  Outcome out;
  const auto in_offered = nat.stats().packets(router::Segment::kClientsToNat);
  const auto in_delivered = nat.stats().packets(router::Segment::kNatToServer);
  out.game_in_loss =
      in_offered > 0
          ? 1.0 - static_cast<double>(in_delivered) / static_cast<double>(in_offered)
          : 0.0;
  out.web_share =
      total_forwarded > 0
          ? static_cast<double>(web_forwarded) / static_cast<double>(total_forwarded)
          : 0.0;
  out.quits = qoe ? qoe->quits_triggered() : 0;
  out.final_players = server.player_series().values().empty()
                          ? 0.0
                          : server.player_series().values().back();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  const auto scale = core::ExperimentScale::FromEnv(600.0);
  bench::PrintScaleBanner("Ablation - background bulk transfers on the bottleneck",
                          scale.duration, scale.full);

  std::cout << "\n  web flows/s | in-loss (all) | web pkt share | QoE quits | final players\n";
  for (const double rate : {0.0, 0.5, 1.5, 3.0}) {
    const Outcome plain = RunMix(rate, /*qoe=*/false, scale.duration);
    const Outcome tuned = RunMix(rate, /*qoe=*/true, scale.duration);
    std::cout << "  " << core::FormatDouble(rate, 1) << "         |    "
              << core::FormatDouble(plain.game_in_loss * 100.0, 2) << "%      |     "
              << core::FormatDouble(plain.web_share * 100.0, 1) << "%     |    "
              << tuned.quits << "      |      " << core::FormatDouble(tuned.final_players, 0)
              << "\n";
  }

  std::cout <<
      "\nExpected: with no cross traffic the 1.6 kpps device carries the game\n"
      "cleanly; as web downloads share the lookup path, inbound loss climbs\n"
      "and (QoE columns) players quit until the load fits - the paper's\n"
      "self-tuning under \"background traffic\".\n";
  return 0;
}
