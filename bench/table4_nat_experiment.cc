// Table IV: the NAT experiment - a busy single-map server behind a COTS
// NAT device rated at 1000-1500 pps.
//
// Paper values (one 30-min map): outgoing 677,278 -> 674,157 (0.46% loss;
// the paper's table prints "0.046%" but its own counts and text - "almost
// 0.5%" - give 0.46%); incoming 853,035 -> 841,960 (1.3% loss).
#include <cstdlib>

#include "common.h"
#include "router/device_stats.h"
#include "router/nat_device.h"
#include "sim/simulator.h"
#include "trace/loss_estimator.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto config = core::NatExperimentConfig::Defaults();
  const auto scale = core::ExperimentScale::FromEnv(config.duration);
  if (scale.duration != config.duration && !scale.full) {
    config.duration = scale.duration;
    config.game.trace_duration = scale.duration;
    config.game.maps.map_duration = scale.duration + 60.0;
  }
  bench::PrintScaleBanner("Table IV - NAT experiment (one 30-min map)", config.duration,
                          /*full=*/true);

  const auto result = core::RunNatExperiment(config);
  const auto& d = result.device;

  // Independent cross-check: re-run and estimate the loss purely from the
  // netchannel sequence gaps in the *delivered* stream (what a tcpdump on
  // the far side of the device would see), as a measurement study would.
  trace::SeqGapLossEstimator estimator;
  {
    sim::Simulator simulator;
    router::NatDevice nat(simulator, config.device);
    game::CsServer server(simulator, config.game, nat.injector());
    nat.SetDeliverCallback(
        [&](const net::PacketRecord& record, router::Segment) { estimator.OnPacket(record); });
    nat.Start();
    server.Start();
    simulator.RunUntil(config.duration);
  }

  core::TableReport table("TABLE IV: NAT EXPERIMENT");
  table.AddRow("-- Outgoing Traffic --", "");
  table.AddCount("Total Packets From Server to NAT",
                 d.packets(router::Segment::kServerToNat));
  table.AddCount("Total Packets From NAT to Clients",
                 d.packets(router::Segment::kNatToClients));
  table.AddValue("Loss Rate", d.loss_rate_outgoing() * 100.0, "%", 3);
  table.AddRow("-- Incoming Traffic --", "");
  table.AddCount("Total Packets From Clients to NAT",
                 d.packets(router::Segment::kClientsToNat));
  table.AddCount("Total Packets From NAT to Server",
                 d.packets(router::Segment::kNatToServer));
  table.AddValue("Loss Rate", d.loss_rate_incoming() * 100.0, "%", 2);
  table.Print(std::cout);

  core::TableReport internals("Device internals (not in the paper's table)");
  internals.AddValue("Mean forwarding delay", d.delay().mean() * 1e3, "ms");
  internals.AddValue("p99 forwarding delay", d.delay_p99() * 1e3, "ms");
  internals.AddRow("Livelock episodes", std::to_string(result.livelock_episodes));
  internals.AddRow("Game-freeze feedback events", std::to_string(result.server_freezes));
  internals.AddCount("NAT table entries", result.nat_table_size);
  internals.Print(std::cout);

  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Server->NAT packets", "677,278",
                 core::FormatCount(d.packets(router::Segment::kServerToNat)));
  bench::Compare("Clients->NAT packets", "853,035",
                 core::FormatCount(d.packets(router::Segment::kClientsToNat)));
  bench::Compare("Outgoing loss", "0.46%",
                 core::FormatDouble(d.loss_rate_outgoing() * 100.0, 3) + "%");
  bench::Compare("Incoming loss", "1.3%",
                 core::FormatDouble(d.loss_rate_incoming() * 100.0, 2) + "%");
  bench::Compare("In-loss >> out-loss", "yes",
                 d.loss_rate_incoming() > 2.0 * d.loss_rate_outgoing() ? "yes" : "NO");
  bench::Compare(
      "Incoming loss re-derived from sequence gaps", "matches device counters",
      core::FormatDouble(
          estimator.Estimate(net::Direction::kClientToServer).loss_rate() * 100.0, 2) +
          "%");
  return 0;
}
