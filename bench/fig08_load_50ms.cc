// Figure 8: total packet load at m = 50 ms (first 200 intervals).
//
// Paper shape: aggregating at the tick period smooths the load
// considerably - the spikes of Figure 6 collapse into a fairly flat band.
#include "common.h"

#include "game/config.h"
#include "trace/aggregator.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  const auto scale = core::ExperimentScale::FromEnv(30.0);
  const auto config = game::GameConfig::ScaledDefaults(scale.duration);
  trace::LoadAggregator agg(0.010);
  core::RunServerTrace(config, agg);
  bench::PrintScaleBanner("Figure 8 - total packet load at m = 50 ms", scale.duration,
                          scale.full);

  const auto base = agg.packets_total();
  const auto at50 = base.Aggregate(5).Rate();  // 10 ms -> 50 ms bins
  std::cout << "\n# Fig 8: total packet load, 200 x 50 ms intervals (interval#, pkts/sec)\n";
  const std::size_t begin = 20;  // skip the first second of warm-up
  for (std::size_t i = begin; i < begin + 200 && i < at50.size(); ++i) {
    std::cout << (i - begin) << ' ' << at50[i] << '\n';
  }

  const auto base_rate = base.Rate();
  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Peak-to-mean at 10 ms", "very high (bursts)",
                 core::FormatDouble(base_rate.Max() / base_rate.Mean(), 1));
  bench::Compare("Peak-to-mean at 50 ms", "considerably smoothed",
                 core::FormatDouble(at50.Max() / at50.Mean(), 1));
  return 0;
}
