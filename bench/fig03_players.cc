// Figure 3: per-minute number of players for the entire trace.
//
// Paper shape: hovers near the 22-slot cap with heavy short-term churn;
// dips around the three outages that recover over minutes.
#include "common.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto run = bench::RunCharacterized(43200.0);
  bench::PrintScaleBanner("Figure 3 - players over time", run.duration, run.full);

  bench::PrintSeries(std::cout, run.players, "players (sampled per minute)", 400);

  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Mean players", "~18 (883 kbps / 40 kbps per player / 22 slots)",
                 core::FormatDouble(run.players.Mean(), 1));
  bench::Compare("Ceiling", "22 slots", core::FormatDouble(run.players.Max(), 0));
  bench::Compare("Short-term variation", "large",
                 "min " + core::FormatDouble(run.players.Min(), 0));
  bench::Compare("Peak players ever (ground truth)", "can exceed slots across a minute",
                 std::to_string(run.stats.peak_players));
  return 0;
}
