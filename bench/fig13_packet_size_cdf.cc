// Figure 13: cumulative distribution functions of application packet
// sizes (inbound, outbound, total).
//
// Paper shape: almost all inbound packets smaller than 60 B; outbound mass
// spread between 0 and 300 B; far below the >400 B means of contemporary
// Internet-exchange traffic.
#include "common.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto run = bench::RunCharacterized(7200.0);
  bench::PrintScaleBanner("Figure 13 - packet size CDFs", run.duration, run.full);

  core::PrintHistogram(std::cout, run.report.size_in, "inbound CDF", /*cdf=*/true);
  core::PrintHistogram(std::cout, run.report.size_out, "outbound CDF", /*cdf=*/true);
  core::PrintHistogram(std::cout, run.report.size_total, "total CDF", /*cdf=*/true);

  const auto cdf_in = run.report.size_in.Cdf();
  const auto cdf_out = run.report.size_out.Cdf();
  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Inbound below 60 B", "almost all",
                 core::FormatDouble(cdf_in[59] * 100.0, 2) + "%");
  bench::Compare("Outbound spread", "0-300 B holds most mass",
                 core::FormatDouble(cdf_out[299] * 100.0, 1) + "% below 300 B");
  bench::Compare("Mean vs IX traffic", "game mean 80 B vs >400 B at exchanges",
                 core::FormatDouble(run.report.summary.mean_packet_size(), 1) + " B");
  return 0;
}
