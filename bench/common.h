// Shared plumbing for the bench binaries that regenerate the paper's
// tables and figures.
//
// Every bench simulates a scaled window by default (seconds of wall clock)
// and honours GAMETRACE_FULL=1 / GAMETRACE_DURATION=<s> to run the paper's
// entire 626,477 s week. Scaling shortens the simulated window only: the
// tick, map, session and size mechanisms are untouched, so every *shape*
// reported by the paper is preserved; totals scale with duration.
#pragma once

#include <iostream>
#include <string>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "core/report.h"
#include "game/config.h"

namespace gametrace::bench {

struct CharacterizedRun {
  double duration;
  bool full;
  core::CharacterizationReport report;
  game::CsServer::Stats stats;
  stats::TimeSeries players;
};

// Runs the calibrated server workload for the resolved duration and the
// full analysis pipeline over it.
inline CharacterizedRun RunCharacterized(double default_duration,
                                         core::CharacterizationOptions options = {}) {
  const auto scale = core::ExperimentScale::FromEnv(default_duration);
  const auto config = game::GameConfig::ScaledDefaults(scale.duration);
  core::Characterizer characterizer(options);
  auto result = core::RunServerTrace(config, characterizer);
  return CharacterizedRun{scale.duration, scale.full, characterizer.Finish(scale.duration),
                          result.stats, std::move(result.players)};
}

inline void PrintScaleBanner(const std::string& experiment, double duration, bool full) {
  std::cout << "### " << experiment << "\n"
            << "### simulated duration: " << core::FormatDuration(duration)
            << (full ? " (paper-scale week)"
                     : " (scaled; set GAMETRACE_FULL=1 for the full week)")
            << "\n";
}

// Prints a "paper vs measured" comparison row.
inline void Compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  std::cout << "  " << what << ": paper " << paper << "  |  measured " << measured << "\n";
}

}  // namespace gametrace::bench
