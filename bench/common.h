// Shared plumbing for the bench binaries that regenerate the paper's
// tables and figures.
//
// Every bench simulates a scaled window by default (seconds of wall clock)
// and honours GAMETRACE_FULL=1 / GAMETRACE_DURATION=<s> to run the paper's
// entire 626,477 s week. Scaling shortens the simulated window only: the
// tick, map, session and size mechanisms are untouched, so every *shape*
// reported by the paper is preserved; totals scale with duration.
//
// Observability knobs (see DESIGN.md, "Observability", and
// src/obs/exporter.h for the full flag/env list):
//   --metrics-out=<path> / GAMETRACE_METRICS_OUT  - metrics JSON snapshot
//   --trace-out=<path>   / GAMETRACE_TRACE_OUT    - Chrome trace_event JSON
//   --flight-out=<path>  / GAMETRACE_FLIGHT_OUT   - snapshot-stream JSONL
//   --alerts-out=<path>  / GAMETRACE_ALERTS_OUT   - watchdog alerts JSONL
//   --prom-out=<path>    / GAMETRACE_PROM_OUT     - Prometheus text format
//   --flight-sample=<s>  / GAMETRACE_FLIGHT_SAMPLE- sampling period
//   --flight-dump=<path> / GAMETRACE_FLIGHT_DUMP  - black-box dump path
//   GAMETRACE_VERBOSE=0                           - suppress series dumps
//   GAMETRACE_HEARTBEAT=<s>                       - stderr progress pulse
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "core/report.h"
#include "game/config.h"
#include "obs/exporter.h"

namespace gametrace::bench {

// Whether long series dumps go to stdout. GAMETRACE_VERBOSE=0 silences
// them (CI perf-smoke does); anything else, or unset, keeps them.
inline bool Verbose() {
  static const bool verbose = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): bench main thread, pre-measurement
    const char* env = std::getenv("GAMETRACE_VERBOSE");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return verbose;
}

// core::PrintSeries behind the verbosity gate: quiet runs print a one-line
// placeholder instead of hundreds of (t, y) rows.
inline void PrintSeries(std::ostream& out, const stats::TimeSeries& series,
                        std::string_view name, std::size_t max_points = 0) {
  if (!Verbose()) {
    out << "# " << name << ": " << series.size()
        << " bins (suppressed; unset GAMETRACE_VERBOSE to print)\n";
    return;
  }
  core::PrintSeries(out, series, name, max_points);
}

// Per-binary observability session: obs::ExportSession parses the
// observability flags (or the matching environment variables), binds an
// ambient ObsContext for the bench's lifetime when any output is
// requested, arms the flight recorder, watchdog and black-box dump guard,
// and writes every requested file - metrics including a profiling dump -
// at destruction. Without outputs it binds nothing, so the bench runs
// exactly as before.
using ObsSession = obs::ExportSession;

struct CharacterizedRun {
  double duration;
  bool full;
  core::CharacterizationReport report;
  game::CsServer::Stats stats;
  stats::TimeSeries players;
};

// Runs the calibrated server workload for the resolved duration and the
// full analysis pipeline over it.
inline CharacterizedRun RunCharacterized(double default_duration,
                                         core::CharacterizationOptions options = {}) {
  const auto scale = core::ExperimentScale::FromEnv(default_duration);
  const auto config = game::GameConfig::ScaledDefaults(scale.duration);
  core::Characterizer characterizer(options);
  auto result = core::RunServerTrace(config, characterizer);
  return CharacterizedRun{scale.duration, scale.full, characterizer.Finish(scale.duration),
                          result.stats, std::move(result.players)};
}

inline void PrintScaleBanner(const std::string& experiment, double duration, bool full) {
  std::cout << "### " << experiment << "\n"
            << "### simulated duration: " << core::FormatDuration(duration)
            << (full ? " (paper-scale week)"
                     : " (scaled; set GAMETRACE_FULL=1 for the full week)")
            << "\n";
}

// Prints a "paper vs measured" comparison row.
inline void Compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  std::cout << "  " << what << ": paper " << paper << "  |  measured " << measured << "\n";
}

}  // namespace gametrace::bench
