// Shared plumbing for the bench binaries that regenerate the paper's
// tables and figures.
//
// Every bench simulates a scaled window by default (seconds of wall clock)
// and honours GAMETRACE_FULL=1 / GAMETRACE_DURATION=<s> to run the paper's
// entire 626,477 s week. Scaling shortens the simulated window only: the
// tick, map, session and size mechanisms are untouched, so every *shape*
// reported by the paper is preserved; totals scale with duration.
//
// Observability knobs (see DESIGN.md, "Observability"):
//   --metrics-out=<path> / GAMETRACE_METRICS_OUT  - metrics JSON snapshot
//   --trace-out=<path>   / GAMETRACE_TRACE_OUT    - Chrome trace_event JSON
//   GAMETRACE_VERBOSE=0                           - suppress series dumps
//   GAMETRACE_HEARTBEAT=<s>                       - stderr progress pulse
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "core/report.h"
#include "game/config.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/trace_log.h"

namespace gametrace::bench {

// Whether long series dumps go to stdout. GAMETRACE_VERBOSE=0 silences
// them (CI perf-smoke does); anything else, or unset, keeps them.
inline bool Verbose() {
  static const bool verbose = [] {
    const char* env = std::getenv("GAMETRACE_VERBOSE");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return verbose;
}

// core::PrintSeries behind the verbosity gate: quiet runs print a one-line
// placeholder instead of hundreds of (t, y) rows.
inline void PrintSeries(std::ostream& out, const stats::TimeSeries& series,
                        std::string_view name, std::size_t max_points = 0) {
  if (!Verbose()) {
    out << "# " << name << ": " << series.size()
        << " bins (suppressed; unset GAMETRACE_VERBOSE to print)\n";
    return;
  }
  core::PrintSeries(out, series, name, max_points);
}

// Per-binary observability session: parses --metrics-out= / --trace-out=
// (or the matching environment variables), binds an ambient ObsContext for
// the bench's lifetime when either output is requested, and writes the
// JSON files - metrics including a profiling dump - at destruction.
// Without outputs it binds nothing, so the bench runs exactly as before.
class ObsSession {
 public:
  ObsSession(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg(argv[i]);
      if (arg.starts_with("--metrics-out=")) {
        metrics_path_ = arg.substr(14);
      } else if (arg.starts_with("--trace-out=")) {
        trace_path_ = arg.substr(12);
      }
    }
    if (metrics_path_.empty()) {
      if (const char* env = std::getenv("GAMETRACE_METRICS_OUT")) metrics_path_ = env;
    }
    if (trace_path_.empty()) {
      if (const char* env = std::getenv("GAMETRACE_TRACE_OUT")) trace_path_ = env;
    }
    if (metrics_path_.empty() && trace_path_.empty()) return;
    obs::EnableProfiling(true);
    binding_.emplace(obs::ObsContext{.metrics = &metrics_,
                                     .trace = &trace_,
                                     .shard_id = 0,
                                     .heartbeat = true});
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    if (!binding_.has_value()) return;
    binding_.reset();
    obs::EnableProfiling(false);
    if (!metrics_path_.empty()) {
      obs::DumpProfilingInto(metrics_);
      std::ofstream out(metrics_path_);
      if (out) {
        metrics_.WriteJson(out);
        std::cerr << "[gametrace] metrics written to " << metrics_path_ << "\n";
      } else {
        std::cerr << "[gametrace] cannot write metrics to " << metrics_path_ << "\n";
      }
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      if (out) {
        trace_.WriteJson(out);
        std::cerr << "[gametrace] trace written to " << trace_path_ << "\n";
      } else {
        std::cerr << "[gametrace] cannot write trace to " << trace_path_ << "\n";
      }
    }
  }

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] obs::TraceLog& trace() noexcept { return trace_; }
  [[nodiscard]] bool active() const noexcept { return binding_.has_value(); }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  obs::MetricsRegistry metrics_;
  obs::TraceLog trace_;
  std::optional<obs::ScopedObsBinding> binding_;
};

struct CharacterizedRun {
  double duration;
  bool full;
  core::CharacterizationReport report;
  game::CsServer::Stats stats;
  stats::TimeSeries players;
};

// Runs the calibrated server workload for the resolved duration and the
// full analysis pipeline over it.
inline CharacterizedRun RunCharacterized(double default_duration,
                                         core::CharacterizationOptions options = {}) {
  const auto scale = core::ExperimentScale::FromEnv(default_duration);
  const auto config = game::GameConfig::ScaledDefaults(scale.duration);
  core::Characterizer characterizer(options);
  auto result = core::RunServerTrace(config, characterizer);
  return CharacterizedRun{scale.duration, scale.full, characterizer.Finish(scale.duration),
                          result.stats, std::move(result.players)};
}

inline void PrintScaleBanner(const std::string& experiment, double duration, bool full) {
  std::cout << "### " << experiment << "\n"
            << "### simulated duration: " << core::FormatDuration(duration)
            << (full ? " (paper-scale week)"
                     : " (scaled; set GAMETRACE_FULL=1 for the full week)")
            << "\n";
}

// Prints a "paper vs measured" comparison row.
inline void Compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  std::cout << "  " << what << ": paper " << paper << "  |  measured " << measured << "\n";
}

}  // namespace gametrace::bench
