// Ablation (paper section IV-B): "preferential route caching strategies
// based on packet size or packet frequency may provide significant
// improvements in packet throughput".
//
// Workload: the game server's 22 client routes (tiny packets, enormous
// packet counts) mixed with web-like cross traffic (many short flows of
// big packets). Sweep cache sizes and compare policies.
#include <iomanip>

#include "common.h"

#include "router/route_cache.h"
#include "router/routing_table.h"
#include "sim/random.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  const auto scale = core::ExperimentScale::FromEnv(600.0);
  bench::PrintScaleBanner("Ablation - route cache policies (paper section IV-B)",
                          scale.duration, scale.full);

  // Generate the access stream once: game packets from the simulated
  // server (destination = client IP on the outbound path) interleaved with
  // web-like lookups.
  std::vector<std::pair<std::uint32_t, std::uint16_t>> accesses;
  {
    auto cfg = game::GameConfig::ScaledDefaults(scale.duration);
    sim::Rng web_rng(99);
    trace::CallbackSink sink([&](const net::PacketRecord& r) {
      if (r.direction != net::Direction::kServerToClient) return;
      accesses.emplace_back(r.client_ip.value(), r.app_bytes);
      // ~1 web-like lookup per 4 game packets: short flows (1-12 packets)
      // to effectively-unique destinations with 300-1400 B packets.
      if (web_rng.NextDouble() < 0.25) {
        const auto dst = static_cast<std::uint32_t>(0xC0000000u | web_rng.NextBelow(1 << 22));
        const auto packets = 1 + web_rng.NextBelow(12);
        for (std::uint64_t p = 0; p < packets; ++p) {
          accesses.emplace_back(dst,
                                static_cast<std::uint16_t>(300 + web_rng.NextBelow(1100)));
        }
      }
    });
    core::RunServerTrace(cfg, sink);
  }
  std::cout << "# access stream: " << core::FormatCount(accesses.size()) << " lookups\n";

  // A populated FIB gives the miss penalty in trie-node visits.
  router::RoutingTable fib;
  sim::Rng fib_rng(7);
  for (int i = 0; i < 20000; ++i) {
    fib.Insert(net::Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(fib_rng())),
                               8 + static_cast<int>(fib_rng.NextBelow(17))),
               static_cast<std::uint32_t>(i));
  }
  fib.Insert(net::Ipv4Prefix(net::Ipv4Address(0u), 0), 0);  // default route

  std::cout << "\n  cache size | " << std::setw(10) << "LRU" << std::setw(12) << "LFU"
            << std::setw(16) << "small-pkt-pref" << std::setw(14) << "freq-pref"
            << "   (hit rate)\n";
  for (std::size_t capacity : {8, 16, 32, 64, 256}) {
    std::cout << "  " << std::setw(10) << capacity << " |";
    for (const auto policy :
         {router::CachePolicy::kLru, router::CachePolicy::kLfu,
          router::CachePolicy::kSmallPacketPreferential,
          router::CachePolicy::kFrequencyPreferential}) {
      router::RouteCache cache(capacity, policy);
      for (const auto& [dst, bytes] : accesses) {
        if (!cache.Access(dst, bytes)) {
          // Miss: pay the full trie walk (kept for realism/throughput
          // accounting; the FIB lookup result is not needed here).
          (void)fib.Lookup(net::Ipv4Address(dst));
        }
      }
      std::cout << std::setw(13) << core::FormatDouble(cache.hit_rate() * 100.0, 1) + "%";
    }
    std::cout << "\n";
  }

  std::cout <<
      "\nExpected: at small cache sizes the preferential policies hold the 22\n"
      "game routes against web churn and beat plain LRU - the paper's\n"
      "conjecture. With large caches every policy converges.\n";
  return 0;
}
