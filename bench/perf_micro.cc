// Micro-benchmarks (google-benchmark) of the hot paths: workload
// generation, stream analysis, trie lookup and route-cache access.
#include <benchmark/benchmark.h>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "game/config.h"
#include "router/route_cache.h"
#include "router/routing_table.h"
#include "sim/random.h"
#include "stats/variance_time.h"
#include "trace/aggregator.h"
#include "trace/capture.h"

namespace {

using namespace gametrace;

// End-to-end workload generation throughput (packets simulated per second
// of wall clock).
void BM_WorkloadGeneration(benchmark::State& state) {
  const double duration = static_cast<double>(state.range(0));
  std::uint64_t packets = 0;
  for (auto _ : state) {
    auto cfg = game::GameConfig::ScaledDefaults(duration);
    trace::CountingSink sink;
    const auto result = core::RunServerTrace(cfg, sink);
    packets += result.stats.packets_emitted;
    benchmark::DoNotOptimize(sink.packets());
  }
  state.counters["packets/s"] =
      benchmark::Counter(static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WorkloadGeneration)->Arg(60)->Arg(300)->Unit(benchmark::kMillisecond);

// Full analysis pipeline cost per packet.
void BM_CharacterizerPipeline(benchmark::State& state) {
  auto cfg = game::GameConfig::ScaledDefaults(60.0);
  trace::VectorSink capture;
  core::RunServerTrace(cfg, capture);
  const auto& records = capture.records();
  for (auto _ : state) {
    core::Characterizer characterizer;
    for (const auto& r : records) characterizer.OnPacket(r);
    auto report = characterizer.Finish(60.0);
    benchmark::DoNotOptimize(report.summary.total_packets());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_CharacterizerPipeline)->Unit(benchmark::kMillisecond);

// Just the binning aggregator (the per-packet hot path of Figures 1-10).
void BM_LoadAggregator(benchmark::State& state) {
  auto cfg = game::GameConfig::ScaledDefaults(60.0);
  trace::VectorSink capture;
  core::RunServerTrace(cfg, capture);
  const auto& records = capture.records();
  for (auto _ : state) {
    trace::LoadAggregator agg(0.010);
    for (const auto& r : records) agg.OnPacket(r);
    benchmark::DoNotOptimize(agg.packets_in().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_LoadAggregator)->Unit(benchmark::kMillisecond);

// Variance-time computation over a day of 10 ms bins.
void BM_VarianceTime(benchmark::State& state) {
  sim::Rng rng(1);
  stats::TimeSeries series(0.0, 0.01);
  const auto bins = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < bins; ++i) {
    series.Add(static_cast<double>(i) * 0.01, (i % 5 == 0) ? 18.0 : rng.NextDouble());
  }
  for (auto _ : state) {
    auto plot = stats::ComputeVarianceTime(series);
    benchmark::DoNotOptimize(plot.points.size());
  }
}
BENCHMARK(BM_VarianceTime)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

// LPM trie lookups against a 100k-route FIB.
void BM_TrieLookup(benchmark::State& state) {
  router::RoutingTable fib;
  sim::Rng rng(2);
  for (int i = 0; i < 100000; ++i) {
    fib.Insert(net::Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng())),
                               8 + static_cast<int>(rng.NextBelow(17))),
               static_cast<std::uint32_t>(i));
  }
  sim::Rng probe_rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fib.Lookup(net::Ipv4Address(static_cast<std::uint32_t>(probe_rng()))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLookup);

// Route-cache access under game traffic, per policy.
void BM_RouteCacheAccess(benchmark::State& state) {
  const auto policy = static_cast<router::CachePolicy>(state.range(0));
  router::RouteCache cache(64, policy);
  sim::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Access(static_cast<std::uint32_t>(rng.NextBelow(22)), 130));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(router::PolicyName(policy)));
}
BENCHMARK(BM_RouteCacheAccess)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// NAT-device simulation throughput.
void BM_NatExperiment(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = core::NatExperimentConfig::Defaults();
    cfg.duration = 60.0;
    cfg.game.trace_duration = 60.0;
    cfg.game.maps.map_duration = 120.0;
    const auto result = core::RunNatExperiment(cfg);
    benchmark::DoNotOptimize(result.device.packets(router::Segment::kNatToServer));
  }
}
BENCHMARK(BM_NatExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
