// Micro-benchmarks (google-benchmark) of the hot paths: workload
// generation, stream analysis, fleet shard scaling, trie lookup and
// route-cache access. Also emits BENCH_fleet.json (packets/sec per worker
// count) so the perf trajectory of the sharded engine is machine-readable.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "core/fleet.h"
#include "game/config.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "router/route_cache.h"
#include "router/routing_table.h"
#include "sim/random.h"
#include "stats/online_hurst.h"
#include "stats/quantile_sketch.h"
#include "stats/tiered_ring.h"
#include "stats/variance_time.h"
#include "trace/aggregator.h"
#include "trace/capture.h"
#include "trace/fused_chain.h"
#include "trace/session_tracker.h"
#include "trace/summary.h"
#include "trace/trace_format.h"

namespace {

using namespace gametrace;

// Generates the calibrated capture once into a compact .gtr spool file;
// analysis benchmarks then stream records from disk per iteration in O(1)
// memory. (A VectorSink would materialise the whole capture - tens of GB
// of records at GAMETRACE_FULL scale.)
class SpooledCapture {
 public:
  explicit SpooledCapture(double duration)
      : path_((std::filesystem::temp_directory_path() / "gametrace_perf_micro.gtr").string()) {
    auto cfg = game::GameConfig::ScaledDefaults(duration);
    trace::TraceWriter writer(path_, cfg.server);
    core::RunServerTrace(cfg, writer);
    writer.Flush();
    packets_ = writer.packets_written();
  }
  ~SpooledCapture() { std::remove(path_.c_str()); }

  std::uint64_t DrainInto(trace::CaptureSink& sink) const {
    trace::TraceReader reader(path_);
    return reader.Drain(sink);
  }
  [[nodiscard]] std::uint64_t packets() const noexcept { return packets_; }

 private:
  std::string path_;
  std::uint64_t packets_ = 0;
};

const SpooledCapture& SharedCapture() {
  static const SpooledCapture capture(60.0);
  return capture;
}

// End-to-end workload generation throughput (packets simulated per second
// of wall clock).
void BM_WorkloadGeneration(benchmark::State& state) {
  const double duration = static_cast<double>(state.range(0));
  std::uint64_t packets = 0;
  for (auto _ : state) {
    auto cfg = game::GameConfig::ScaledDefaults(duration);
    trace::CountingSink sink;
    const auto result = core::RunServerTrace(cfg, sink);
    packets += result.stats.packets_emitted;
    benchmark::DoNotOptimize(sink.packets());
  }
  state.counters["packets/s"] =
      benchmark::Counter(static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WorkloadGeneration)->Arg(60)->Arg(300)->Unit(benchmark::kMillisecond);

// Full analysis pipeline cost per packet, streamed from the spool file.
void BM_CharacterizerPipeline(benchmark::State& state) {
  const auto& capture = SharedCapture();
  for (auto _ : state) {
    core::Characterizer characterizer;
    capture.DrainInto(characterizer);
    auto report = characterizer.Finish(60.0);
    benchmark::DoNotOptimize(report.summary.total_packets());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(capture.packets()) * state.iterations());
}
BENCHMARK(BM_CharacterizerPipeline)->Unit(benchmark::kMillisecond);

// Just the binning aggregator (the per-packet hot path of Figures 1-10).
void BM_LoadAggregator(benchmark::State& state) {
  const auto& capture = SharedCapture();
  for (auto _ : state) {
    trace::LoadAggregator agg(0.010);
    capture.DrainInto(agg);
    benchmark::DoNotOptimize(agg.packets_in().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(capture.packets()) * state.iterations());
}
BENCHMARK(BM_LoadAggregator)->Unit(benchmark::kMillisecond);

// ---- Hot-path delivery sweep: scalar vs batched AoS vs columnar-fused ---

// A synthetic replica of the server's steady-state emission pattern: each
// 50 ms tick produces one contiguous burst of ~22 outbound snapshots
// followed by ~13 inbound client updates, exactly the shape CsServer hands
// to its sink as one batch. The same stream is held both as AoS records
// (per-tick spans) and pre-columnised (per-tick PacketBatch views), so each
// delivery tier starts from its native representation - as it would in the
// live server, where the tick buffer is born columnar.
struct HotpathWorkload {
  std::vector<net::PacketRecord> records;
  std::vector<std::span<const net::PacketRecord>> ticks;
  net::ColumnarBatch columns;
  std::vector<net::PacketBatch> column_ticks;
};

HotpathWorkload MakeHotpathWorkload(std::size_t tick_count) {
  constexpr int kClients = 22;
  constexpr double kTick = 0.05;
  sim::Rng rng(99);
  HotpathWorkload w;
  w.records.reserve(tick_count * (kClients + 13));
  std::vector<std::pair<std::size_t, std::size_t>> extents;
  std::uint32_t seq_out[kClients] = {};
  std::uint32_t seq_in[kClients] = {};
  for (std::size_t tick = 0; tick < tick_count; ++tick) {
    const double t = static_cast<double>(tick) * kTick;
    const std::size_t begin = w.records.size();
    for (int c = 0; c < kClients; ++c) {  // broadcast burst
      net::PacketRecord r;
      r.timestamp = t + 1e-5 * static_cast<double>(c);
      r.client_ip = net::Ipv4Address((10u << 24) | static_cast<std::uint32_t>(c + 1));
      r.client_port = static_cast<std::uint16_t>(30000 + c);
      r.app_bytes = static_cast<std::uint16_t>(120 + rng.NextBelow(60));
      r.direction = net::Direction::kServerToClient;
      r.kind = net::PacketKind::kGameUpdate;
      r.seq = ++seq_out[c];
      w.records.push_back(r);
    }
    for (int i = 0; i < 13; ++i) {  // client sends inside the tick window
      const auto c = static_cast<int>(rng.NextBelow(kClients));
      net::PacketRecord r;
      r.timestamp = t + kTick * rng.NextDouble();
      r.client_ip = net::Ipv4Address((10u << 24) | static_cast<std::uint32_t>(c + 1));
      r.client_port = static_cast<std::uint16_t>(30000 + c);
      r.app_bytes = static_cast<std::uint16_t>(40 + rng.NextBelow(40));
      r.direction = net::Direction::kClientToServer;
      r.kind = net::PacketKind::kGameUpdate;
      r.seq = ++seq_in[c];
      w.records.push_back(r);
    }
    extents.emplace_back(begin, w.records.size() - begin);
  }
  w.ticks.reserve(extents.size());
  w.columns.Append(w.records);
  w.column_ticks.reserve(extents.size());
  const net::PacketBatch all_columns = w.columns.View();
  for (const auto& [begin, len] : extents) {
    w.ticks.emplace_back(std::span<const net::PacketRecord>(w.records).subspan(begin, len));
    w.column_ticks.push_back(all_columns.Slice(begin, len));
  }
  return w;
}

// Analysis chains of increasing depth, as a fleet worker would stack them.
// `head` is the unfused chain entry; `columnar_head` is the FuseChain
// compilation of the same chain (or the bare terminal at depth 1, which has
// nothing to fuse).
struct SinkChain {
  trace::CountingSink counting;
  trace::LoadAggregator agg{0.010};
  trace::TraceSummary summary;
  trace::SessionTracker sessions{30.0};
  trace::TeeSink tee;
  std::unique_ptr<trace::ShardNamespaceSink> ns;
  std::unique_ptr<trace::FusedChain> fused;
  trace::CaptureSink* head = nullptr;
  trace::CaptureSink* columnar_head = nullptr;

  explicit SinkChain(int depth) {
    switch (depth) {
      case 1:
        head = &counting;
        break;
      case 2:
        ns = std::make_unique<trace::ShardNamespaceSink>(3, counting);
        head = ns.get();
        break;
      case 3:
        tee.Attach(counting);
        tee.Attach(agg);
        ns = std::make_unique<trace::ShardNamespaceSink>(3, tee);
        head = ns.get();
        break;
      default:
        tee.Attach(counting);
        tee.Attach(agg);
        tee.Attach(summary);
        tee.Attach(sessions);
        ns = std::make_unique<trace::ShardNamespaceSink>(3, tee);
        head = ns.get();
        break;
    }
    if (ns != nullptr) fused = trace::FuseChain(*ns);
    columnar_head = fused != nullptr ? fused.get() : head;
  }
};

enum class Delivery { kScalar = 0, kBatched = 1, kColumnarFused = 2 };

const char* ChainName(int depth) {
  switch (depth) {
    case 1: return "counting";
    case 2: return "shard_ns->counting";
    case 3: return "shard_ns->tee{counting,load_agg}";
    default: return "shard_ns->tee{counting,load_agg,summary,sessions}";
  }
}

const HotpathWorkload& SharedHotpathWorkload() {
  static const HotpathWorkload workload = MakeHotpathWorkload(2000);
  return workload;
}

void RunHotpathPass(const HotpathWorkload& w, SinkChain& chain, Delivery mode) {
  switch (mode) {
    case Delivery::kScalar:
      for (const net::PacketRecord& r : w.records) chain.head->OnPacket(r);
      break;
    case Delivery::kBatched:
      for (const auto tick : w.ticks) chain.head->OnBatch(tick);
      break;
    case Delivery::kColumnarFused:
      for (const net::PacketBatch& tick : w.column_ticks) chain.columnar_head->OnColumns(tick);
      break;
  }
}

const char* DeliveryName(Delivery mode) {
  switch (mode) {
    case Delivery::kScalar:
      return "scalar ";
    case Delivery::kBatched:
      return "batched ";
    default:
      return "columnar-fused ";
  }
}

// state.range(0) = chain depth,
// state.range(1) = 0 scalar / 1 batched AoS / 2 columnar-fused.
void BM_HotPathDelivery(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto mode = static_cast<Delivery>(state.range(1));
  const auto& workload = SharedHotpathWorkload();
  SinkChain chain(depth);
  for (auto _ : state) {
    RunHotpathPass(workload, chain, mode);
    benchmark::DoNotOptimize(chain.counting.packets());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(workload.records.size()) *
                          state.iterations());
  state.SetLabel(std::string(DeliveryName(mode)) + ChainName(depth));
}
BENCHMARK(BM_HotPathDelivery)
    ->Args({1, 0})->Args({1, 1})->Args({1, 2})
    ->Args({2, 0})->Args({2, 1})->Args({2, 2})
    ->Args({3, 0})->Args({3, 1})->Args({3, 2})
    ->Args({4, 0})->Args({4, 1})->Args({4, 2});

double TimeHotpathWindow(const HotpathWorkload& w, SinkChain& chain, Delivery mode) {
  std::size_t passes = 0;
  const auto start = std::chrono::steady_clock::now();
  std::chrono::duration<double> elapsed{};
  do {
    RunHotpathPass(w, chain, mode);
    ++passes;
    elapsed = std::chrono::steady_clock::now() - start;
  } while (elapsed.count() < 0.15);
  return static_cast<double>(w.records.size() * passes) / elapsed.count();
}

struct HotpathTriple {
  double scalar_pps = 0.0;
  double batched_pps = 0.0;
  double columnar_pps = 0.0;
};

// Interleaves the three delivery modes (best of 7 windows each, rotating
// which mode leads every rep) so machine noise and frequency drift hit every
// mode evenly instead of biasing whichever ran last.
HotpathTriple MeasureHotpath(const HotpathWorkload& w, int depth) {
  SinkChain scalar_chain(depth);
  SinkChain batched_chain(depth);
  SinkChain columnar_chain(depth);
  RunHotpathPass(w, scalar_chain, Delivery::kScalar);  // warm-up
  RunHotpathPass(w, batched_chain, Delivery::kBatched);
  RunHotpathPass(w, columnar_chain, Delivery::kColumnarFused);
  HotpathTriple best;
  const auto window = [&](Delivery mode) {
    switch (mode) {
      case Delivery::kScalar:
        best.scalar_pps =
            std::max(best.scalar_pps, TimeHotpathWindow(w, scalar_chain, mode));
        break;
      case Delivery::kBatched:
        best.batched_pps =
            std::max(best.batched_pps, TimeHotpathWindow(w, batched_chain, mode));
        break;
      case Delivery::kColumnarFused:
        best.columnar_pps =
            std::max(best.columnar_pps, TimeHotpathWindow(w, columnar_chain, mode));
        break;
    }
  };
  constexpr Delivery kModes[] = {Delivery::kScalar, Delivery::kBatched,
                                 Delivery::kColumnarFused};
  for (int rep = 0; rep < 7; ++rep) {
    for (int m = 0; m < 3; ++m) window(kModes[(rep + m) % 3]);
  }
  return best;
}

// ---- Observability overhead ------------------------------------------

// A unit of work comparable to one sink dispatch, with and without the
// profiling scope, kept out-of-line so both compile to the same core loop.
__attribute__((noinline)) std::uint64_t ProbeWithScope(std::uint64_t x) {
  GT_PROF_SCOPE("obs.idle_probe");
  return x * 2654435761ULL + 1;
}

__attribute__((noinline)) std::uint64_t ProbeWithoutScope(std::uint64_t x) {
  return x * 2654435761ULL + 1;
}

// Best-of-5 per-call nanoseconds of `probe` over 0.05 s timing windows.
double MeasureProbeNs(std::uint64_t (*probe)(std::uint64_t)) {
  double best = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    std::uint64_t x = 1;
    std::size_t calls = 0;
    const auto start = std::chrono::steady_clock::now();
    std::chrono::duration<double> elapsed{};
    do {
      for (int i = 0; i < 4096; ++i) x = probe(x);
      calls += 4096;
      elapsed = std::chrono::steady_clock::now() - start;
    } while (elapsed.count() < 0.05);
    benchmark::DoNotOptimize(x);
    best = std::min(best, elapsed.count() * 1e9 / static_cast<double>(calls));
  }
  return best;
}

// GT_PROF_SCOPE cost per call while profiling is disabled - the price every
// build pays on the hot path whether or not anyone is watching.
void BM_ProfScopeIdle(benchmark::State& state) {
  obs::EnableProfiling(false);
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = ProbeWithScope(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScopeIdle);

struct ObsOverhead {
  double idle_scope_ns = 0.0;    // per GT_PROF_SCOPE, profiling disabled
  double active_scope_ns = 0.0;  // per GT_PROF_SCOPE, profiling enabled
  double scopes_per_record = 0.0;
  double idle_overhead_fraction = 0.0;    // share of hot-path time, idle
  double active_overhead_fraction = 0.0;  // measured end-to-end slowdown
};

// Quantifies the GT_PROF_SCOPE tax on the deepest hot-path chain. Idle
// overhead is per-scope cost times scope density against the measured
// per-record budget (the scopes are compiled in, so they cannot be switched
// off for a differential run); active overhead is a direct A/B of the
// depth-4 batched chain with profiling on vs off.
ObsOverhead MeasureObsOverhead(const HotpathWorkload& w, double idle_batched_pps) {
  ObsOverhead o;
  obs::EnableProfiling(false);
  const double without_ns = MeasureProbeNs(&ProbeWithoutScope);
  o.idle_scope_ns = std::max(0.0, MeasureProbeNs(&ProbeWithScope) - without_ns);
  obs::EnableProfiling(true);
  o.active_scope_ns = std::max(0.0, MeasureProbeNs(&ProbeWithScope) - without_ns);
  const auto active = MeasureHotpath(w, 4);
  obs::EnableProfiling(false);
  obs::ResetProfiling();

  // Depth-4 batched: shard_ns -> tee -> {counting, load_agg, summary,
  // sessions} is 6 scoped OnBatch calls per 35-record tick.
  o.scopes_per_record = 6.0 / 35.0;
  if (idle_batched_pps > 0.0) {
    const double record_ns = 1e9 / idle_batched_pps;
    o.idle_overhead_fraction = o.idle_scope_ns * o.scopes_per_record / record_ns;
    o.active_overhead_fraction =
        std::max(0.0, 1.0 - active.batched_pps / idle_batched_pps);
  }
  return o;
}

// ---- Flight-recorder sampling overhead --------------------------------

struct FlightOverhead {
  double sample_ns = 0.0;           // one registry snapshot + ring push
  double records_per_minute = 0.0;  // paper-scale traffic per sample period
  double overhead_fraction = 0.0;   // sampling share of the per-minute budget
};

// The flight recorder charges the sim one registry copy per sampling period
// (default one sim-minute). Price that copy against the hot-path cost of the
// traffic a sample period spans at the paper's mean load (Table III: ~270
// pps), using the measured deep-chain batched throughput as the per-record
// budget. The budget for the whole observability layer is < 2% idle.
FlightOverhead MeasureFlightOverhead(double batched_pps) {
  // A registry shaped like a real run's snapshot: the server session and
  // traffic counters plus the NAT and simulator gauges.
  obs::MetricsRegistry metrics;
  const char* counters[] = {"server.packets_emitted",  "server.bytes_emitted",
                            "server.bytes_to_clients", "server.connections.attempted",
                            "server.connections.established", "server.connections.refused",
                            "server.disconnects.orderly", "server.disconnects.outage",
                            "server.maps_started", "server.rounds_started",
                            "nat.device.packets", "nat.device.drops"};
  std::uint64_t value = 1;
  for (const char* name : counters) metrics.counter(name).Add(value += 977);
  metrics.gauge("server.active_players").Set(21.0);
  metrics.gauge("server.peak_players", obs::Gauge::MergeMode::kMax).Set(22.0);
  metrics.gauge("sim.queue.high_water", obs::Gauge::MergeMode::kMax).Set(512.0);

  obs::FlightRecorder recorder;
  FlightOverhead o;
  o.sample_ns = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    std::size_t samples = 0;
    double t = 0.0;
    const auto start = std::chrono::steady_clock::now();
    std::chrono::duration<double> elapsed{};
    do {
      for (int i = 0; i < 64; ++i) {
        obs::MetricsRegistry view = metrics;  // what InstallFlightSampling does
        recorder.Sample(t += 60.0, std::move(view));
      }
      samples += 64;
      elapsed = std::chrono::steady_clock::now() - start;
    } while (elapsed.count() < 0.05);
    o.sample_ns = std::min(o.sample_ns, elapsed.count() * 1e9 / static_cast<double>(samples));
  }

  o.records_per_minute = 270.0 * 60.0;  // Table III mean load over one period
  if (batched_pps > 0.0) {
    const double record_ns = 1e9 / batched_pps;
    o.overhead_fraction = o.sample_ns / (o.records_per_minute * record_ns);
  }
  return o;
}

// ---- Streaming telemetry overhead -------------------------------------

struct TelemetryOverhead {
  double sketch_add_ns = 0.0;  // one QuantileSketch observation
  double ring_add_ns = 0.0;    // one per-tick bulk TieredRing::Add (folds +
                               // online-Hurst cascade amortized in)
  double hurst_push_ns = 0.0;  // one standalone OnlineHurst sample
  double sim_record_ns = 0.0;  // end-to-end generation cost per packet
  double overhead_fraction = 0.0;    // telemetry share of the emission budget
  std::size_t memory_bytes_1x = 0;   // sketch+ring footprint, 1-hour sim
  std::size_t memory_bytes_10x = 0;  // ... 10-hour sim (flat-memory contract)
};

// Prices the active telemetry instruments the server actually wires up: one
// bulk TieredRing::Add per tick carrying the tick's packet count (the
// multi-billion-packet hot path counts packets per tick and folds them in
// one ring walk, with tier folds and the online-Hurst cascade riding
// base-tier evictions) plus one QuantileSketch::Add per client per minute.
// Unlike the
// GT_PROF_SCOPE and flight-sampling taxes - which ride the analysis sinks -
// these instruments live in the server's emission path, so the per-record
// fraction is charged against the measured end-to-end generation cost of
// one packet (an un-instrumented RunServerTrace, the workload these adds
// actually ride). The two memory probes prove the bounded-memory contract:
// a 10x longer sim must not grow the footprint (rings are capacity-pinned,
// sketch stores collapse).
TelemetryOverhead MeasureTelemetryOverhead() {
  TelemetryOverhead o;
  constexpr int kClients = 22;    // Table III mean player count
  constexpr double kTick = 0.05;  // server tick = ring base interval

  // The emission budget and amortization divisor come from the same
  // measured run: a real (un-instrumented - no ambient obs binding here)
  // paper-shaped server trace gives both the wall-clock cost per generated
  // packet and the packets the server actually emits per tick (both
  // directions plus handshakes - more than the paper's per-direction
  // Table III mean, and the honest divisor for a once-per-tick bulk add).
  double packets_per_tick = 0.0;
  double packets_per_second = 0.0;
  {
    const auto cfg = game::GameConfig::ScaledDefaults(30.0);
    // A 30 s paper-shaped trace generates in single-digit milliseconds, so
    // one cold run is mostly page faults and cache warmup; take the best
    // of several (first run warms, later runs measure).
    for (int rep = 0; rep < 4; ++rep) {
      trace::CountingSink sink;
      const auto start = std::chrono::steady_clock::now();
      const auto result = core::RunServerTrace(cfg, sink);
      const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
      if (result.stats.packets_emitted == 0) continue;
      const double record_ns =
          wall.count() * 1e9 / static_cast<double>(result.stats.packets_emitted);
      if (o.sim_record_ns == 0.0 || record_ns < o.sim_record_ns) o.sim_record_ns = record_ns;
      packets_per_second =
          static_cast<double>(result.stats.packets_emitted) / cfg.trace_duration;
      packets_per_tick = packets_per_second * cfg.tick_interval;
    }
  }

  const auto best_of = [](auto&& body) {
    double best = 1e18;
    for (int rep = 0; rep < 5; ++rep) {
      std::size_t ops = 0;
      const auto start = std::chrono::steady_clock::now();
      std::chrono::duration<double> elapsed{};
      do {
        ops += body();
        elapsed = std::chrono::steady_clock::now() - start;
      } while (elapsed.count() < 0.05);
      best = std::min(best, elapsed.count() * 1e9 / static_cast<double>(ops));
    }
    return best;
  };

  {
    stats::QuantileSketch sketch;
    sim::Rng rng(7);
    o.sketch_add_ns = best_of([&] {
      for (int i = 0; i < 1024; ++i) {
        sketch.Add(4.0 + 60.0 * rng.NextDouble());  // kbps-shaped values
      }
      benchmark::DoNotOptimize(sketch.count());
      return std::size_t{1024};
    });
  }
  {
    // The wired pattern: the server folds each tick's packet count into
    // the ring as one bulk Add at the tick timestamp, so each call here
    // advances one full base bin (eviction cascade + Hurst included).
    auto options = stats::TieredRing::Options::PaperSchedule(kTick);
    options.track_hurst = true;
    stats::TieredRing ring(options);
    const double per_tick = packets_per_tick > 0.0 ? packets_per_tick : 1.0;
    double t = 0.0;
    o.ring_add_ns = best_of([&] {
      for (int i = 0; i < 1024; ++i) ring.Add(t += kTick, per_tick);
      benchmark::DoNotOptimize(ring.dropped_late());
      return std::size_t{1024};
    });
  }
  {
    stats::OnlineHurst hurst(stats::OnlineHurst::Options::LogSpaced(0.05));
    sim::Rng rng(8);
    o.hurst_push_ns = best_of([&] {
      for (int i = 0; i < 1024; ++i) hurst.Push(rng.NextDouble());
      benchmark::DoNotOptimize(hurst.samples());
      return std::size_t{1024};
    });
  }

  // Live wiring: one bulk ring add per tick amortized over the tick's
  // measured packet count, one counter increment per packet (noise next to
  // the record cost), kClients sketch points per simulated minute.
  if (o.sim_record_ns > 0.0 && packets_per_tick > 0.0) {
    const double per_record_ns =
        o.ring_add_ns / packets_per_tick +
        o.sketch_add_ns * kClients / (packets_per_second * 60.0);
    o.overhead_fraction = per_record_ns / o.sim_record_ns;
  }

  // Flat-memory probe: identical instruments fed 1 vs 10 simulated hours
  // of the same workload shape; MemoryBytes is capacity-accounted, so any
  // growth is a real contract break, not allocator noise.
  const auto footprint = [&](double sim_hours) {
    auto options = stats::TieredRing::Options::PaperSchedule(kTick);
    options.track_hurst = true;
    stats::TieredRing ring(options);
    stats::QuantileSketch sketch;
    sim::Rng rng(9);
    const auto minutes = static_cast<std::size_t>(sim_hours * 60.0);
    const auto ticks_per_minute = static_cast<int>(60.0 / kTick);
    const double per_tick = packets_per_tick > 0.0 ? packets_per_tick : 1.0;
    double t = 0.0;
    for (std::size_t minute = 0; minute < minutes; ++minute) {
      for (int i = 0; i < ticks_per_minute; ++i) {
        ring.Add(t += kTick, per_tick);
      }
      for (int c = 0; c < kClients; ++c) sketch.Add(4.0 + 60.0 * rng.NextDouble());
    }
    return ring.MemoryBytes() + sketch.MemoryBytes();
  };
  o.memory_bytes_1x = footprint(1.0);
  o.memory_bytes_10x = footprint(10.0);
  return o;
}

// Packets/sec sweep of scalar vs batched-AoS vs columnar-fused delivery per
// chain depth, written to BENCH_hotpath.json. Acceptance bars: batched must
// never lose to scalar (min_speedup >= 1.0) and the columnar-fused tier must
// beat scalar by > 2x at every depth (min_columnar_speedup).
void WriteHotpathJson(const std::string& path) {
  const auto& workload = SharedHotpathWorkload();
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"hotpath_delivery\",\n"
      << "  \"ticks\": " << workload.ticks.size() << ",\n"
      << "  \"records\": " << workload.records.size() << ",\n"
      << "  \"runs\": [\n";
  double min_speedup = 0.0;
  double max_speedup = 0.0;
  double min_columnar_speedup = 0.0;
  double max_columnar_speedup = 0.0;
  double emission_speedup = 0.0;  // depth 2: the shard tick-emission path
  double deep_batched_pps = 0.0;  // depth 4: obs overhead reference
  bool first = true;
  for (int depth = 1; depth <= 4; ++depth) {
    const auto triple = MeasureHotpath(workload, depth);
    const double speedup =
        triple.scalar_pps > 0.0 ? triple.batched_pps / triple.scalar_pps : 0.0;
    const double columnar_speedup =
        triple.scalar_pps > 0.0 ? triple.columnar_pps / triple.scalar_pps : 0.0;
    min_speedup = first ? speedup : std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    min_columnar_speedup =
        first ? columnar_speedup : std::min(min_columnar_speedup, columnar_speedup);
    max_columnar_speedup = std::max(max_columnar_speedup, columnar_speedup);
    if (depth == 2) emission_speedup = speedup;
    if (depth == 4) deep_batched_pps = triple.batched_pps;
    if (!first) out << ",\n";
    first = false;
    out << "    {\"chain_depth\": " << depth << ", \"chain\": \"" << ChainName(depth)
        << "\", \"scalar_packets_per_second\": " << triple.scalar_pps
        << ", \"batched_packets_per_second\": " << triple.batched_pps
        << ", \"columnar_fused_packets_per_second\": " << triple.columnar_pps
        << ", \"speedup\": " << speedup
        << ", \"columnar_speedup\": " << columnar_speedup << "}";
    std::cerr << "hotpath depth " << depth << ": scalar " << triple.scalar_pps
              << " pkt/s, batched " << triple.batched_pps << " pkt/s (" << speedup
              << "x), columnar-fused " << triple.columnar_pps << " pkt/s ("
              << columnar_speedup << "x)\n";
  }
  const ObsOverhead obs = MeasureObsOverhead(workload, deep_batched_pps);
  const FlightOverhead flight = MeasureFlightOverhead(deep_batched_pps);
  const TelemetryOverhead telemetry = MeasureTelemetryOverhead();
  out << "\n  ],\n"
      << "  \"obs\": {\"idle_scope_ns\": " << obs.idle_scope_ns
      << ", \"active_scope_ns\": " << obs.active_scope_ns
      << ", \"scopes_per_record\": " << obs.scopes_per_record
      << ", \"idle_overhead_fraction\": " << obs.idle_overhead_fraction
      << ", \"active_overhead_fraction\": " << obs.active_overhead_fraction << "},\n"
      << "  \"flight\": {\"sample_ns\": " << flight.sample_ns
      << ", \"sample_period_seconds\": 60"
      << ", \"records_per_minute\": " << flight.records_per_minute
      << ", \"overhead_fraction\": " << flight.overhead_fraction << "},\n"
      << "  \"telemetry\": {\"sketch_add_ns\": " << telemetry.sketch_add_ns
      << ", \"ring_add_ns\": " << telemetry.ring_add_ns
      << ", \"hurst_push_ns\": " << telemetry.hurst_push_ns
      << ", \"sim_record_ns\": " << telemetry.sim_record_ns
      << ", \"overhead_fraction\": " << telemetry.overhead_fraction
      << ", \"memory_bytes_1x\": " << telemetry.memory_bytes_1x
      << ", \"memory_bytes_10x\": " << telemetry.memory_bytes_10x << "},\n"
      << "  \"speedup\": " << emission_speedup << ",\n"
      << "  \"min_speedup\": " << min_speedup << ",\n"
      << "  \"max_speedup\": " << max_speedup << ",\n"
      << "  \"min_columnar_speedup\": " << min_columnar_speedup << ",\n"
      << "  \"max_columnar_speedup\": " << max_columnar_speedup << "\n}\n";
  std::cerr << "obs overhead: idle scope " << obs.idle_scope_ns << " ns, active scope "
            << obs.active_scope_ns << " ns, idle fraction " << obs.idle_overhead_fraction
            << ", active fraction " << obs.active_overhead_fraction << "\n";
  std::cerr << "flight sampling: " << flight.sample_ns << " ns/snapshot, fraction "
            << flight.overhead_fraction << " of a paper-scale minute\n";
  std::cerr << "telemetry: sketch add " << telemetry.sketch_add_ns << " ns, ring add "
            << telemetry.ring_add_ns << " ns, hurst push " << telemetry.hurst_push_ns
            << " ns, fraction " << telemetry.overhead_fraction << ", memory "
            << telemetry.memory_bytes_1x << " B @1h vs " << telemetry.memory_bytes_10x
            << " B @10h\n";
  if (obs.idle_overhead_fraction >= 0.02) {
    std::cerr << "WARNING: idle observability overhead above the 2% budget\n";
  }
  if (flight.overhead_fraction >= 0.02) {
    std::cerr << "WARNING: flight sampling overhead above the 2% budget\n";
  }
  if (telemetry.overhead_fraction >= 0.02) {
    std::cerr << "WARNING: active telemetry overhead above the 2% budget\n";
  }
  if (telemetry.memory_bytes_10x > telemetry.memory_bytes_1x) {
    std::cerr << "WARNING: telemetry footprint grew with sim length\n";
  }
  if (out) {
    std::cerr << "wrote " << path << "\n";
  } else {
    std::cerr << "error: could not write " << path << "\n";
  }
}

// Sharded fleet engine: end-to-end packets/sec at 1/2/4/8 workers. The
// merged report is bit-identical across the sweep; only wall clock moves.
void BM_FleetEngine(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::uint64_t packets = 0;
  for (auto _ : state) {
    auto config = core::FleetConfig::Scaled(8, 30.0);
    config.threads = workers;
    const auto result = core::RunFleet(config);
    packets += result.total_packets;
    benchmark::DoNotOptimize(result.report.summary.total_packets());
  }
  state.counters["packets/s"] =
      benchmark::Counter(static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetEngine)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Variance-time computation over a day of 10 ms bins.
void BM_VarianceTime(benchmark::State& state) {
  sim::Rng rng(1);
  stats::TimeSeries series(0.0, 0.01);
  const auto bins = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < bins; ++i) {
    series.Add(static_cast<double>(i) * 0.01, (i % 5 == 0) ? 18.0 : rng.NextDouble());
  }
  for (auto _ : state) {
    auto plot = stats::ComputeVarianceTime(series);
    benchmark::DoNotOptimize(plot.points.size());
  }
}
BENCHMARK(BM_VarianceTime)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

// LPM trie lookups against a 100k-route FIB.
void BM_TrieLookup(benchmark::State& state) {
  router::RoutingTable fib;
  sim::Rng rng(2);
  for (int i = 0; i < 100000; ++i) {
    fib.Insert(net::Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng())),
                               8 + static_cast<int>(rng.NextBelow(17))),
               static_cast<std::uint32_t>(i));
  }
  sim::Rng probe_rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fib.Lookup(net::Ipv4Address(static_cast<std::uint32_t>(probe_rng()))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLookup);

// Route-cache access under game traffic, per policy.
void BM_RouteCacheAccess(benchmark::State& state) {
  const auto policy = static_cast<router::CachePolicy>(state.range(0));
  router::RouteCache cache(64, policy);
  sim::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Access(static_cast<std::uint32_t>(rng.NextBelow(22)), 130));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(router::PolicyName(policy)));
}
BENCHMARK(BM_RouteCacheAccess)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// NAT-device simulation throughput.
void BM_NatExperiment(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = core::NatExperimentConfig::Defaults();
    cfg.duration = 60.0;
    cfg.game.trace_duration = 60.0;
    cfg.game.maps.map_duration = 120.0;
    const auto result = core::RunNatExperiment(cfg);
    benchmark::DoNotOptimize(result.device.packets(router::Segment::kNatToServer));
  }
}
BENCHMARK(BM_NatExperiment)->Unit(benchmark::kMillisecond);

int EnvInt(const char* name, int fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): bench main thread, pre-measurement
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

// Fleet-scaling sweep written to BENCH_fleet.json: wall-clock packets/sec
// for the same fleet at 1/2/4/8 worker threads under the work-stealing
// scheduler. The sweep also byte-compares the merged metrics snapshot
// across worker counts, so the determinism contract is re-proven at bench
// scale on every run. Machine-readable so CI can enforce the scaling
// floor (tools/bench_compare.py).
//
// Scale knobs:
//   GAMETRACE_FLEET_SERVERS=<n>   fleet size (default 96; 1024 under
//                                 GAMETRACE_FULL - with the 540 s default
//                                 window that is a ~500M-packet paper-week
//                                 workload)
//   GAMETRACE_FLEET_DURATION=<s>  per-server simulated seconds (default
//                                 60; 540 under GAMETRACE_FULL)
//   GAMETRACE_FLEET_REPS=<n>      repetitions per worker count, best (lowest)
//                                 wall time kept (default 1). CI sets this >1
//                                 on the fresh sweep so one noisy-neighbor
//                                 stall on a shared runner cannot fail the
//                                 scaling floor on its own.
void WriteFleetScalingJson(const std::string& path) {
  const auto scale = core::ExperimentScale::FromEnv(60.0);
  const int servers = EnvInt("GAMETRACE_FLEET_SERVERS", scale.full ? 1024 : 96);
  const double duration =
      EnvInt("GAMETRACE_FLEET_DURATION", static_cast<int>(scale.full ? 540.0 : scale.duration));
  const int reps = std::max(1, EnvInt("GAMETRACE_FLEET_REPS", 1));
  constexpr std::uint64_t kSeed = 42;
  const int available_cores = static_cast<int>(std::thread::hardware_concurrency());
  const int worker_counts[] = {1, 2, 4, 8};

  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"fleet_shard_scaling\",\n"
      << "  \"shards\": " << servers << ",\n"
      << "  \"duration_seconds\": " << duration << ",\n"
      << "  \"base_seed\": " << kSeed << ",\n"
      << "  \"available_cores\": " << available_cores << ",\n"
      << "  \"reps_per_point\": " << reps << ",\n"
      << "  \"runs\": [\n";
  bool first = true;
  double single_worker_pps = 0.0;
  double last_speedup = 0.0;
  std::string baseline_metrics;
  bool deterministic = true;
  std::uint64_t total_packets = 0;
  double wall_by_workers[4] = {0.0, 0.0, 0.0, 0.0};
  int point = 0;
  for (const int workers : worker_counts) {
    // Best-of-reps: every repetition runs the identical deterministic
    // fleet, so the minimum wall time is the least-contended measurement
    // of the same work and each rep's merged metrics still feed the
    // cross-worker byte-compare.
    double best_wall = 0.0;
    std::uint64_t best_steals = 0;
    std::uint64_t run_packets = 0;
    double sched_units = 0.0;
    double sched_unit_size = 0.0;
    double sched_peak_live = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      auto config = core::FleetConfig::Scaled(servers, duration);
      config.threads = workers;
      config.base_seed = kSeed;
      const auto start = std::chrono::steady_clock::now();
      const auto result = core::RunFleet(config);
      const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;

      const std::string metrics_json = result.metrics.ToJson();
      if (baseline_metrics.empty()) {
        baseline_metrics = metrics_json;
      } else if (metrics_json != baseline_metrics) {
        deterministic = false;
      }

      std::uint64_t steals = 0;
      for (int w = 0; w < workers; ++w) {
        steals += result.scheduler_metrics.counter_value("fleet.worker." + std::to_string(w) +
                                                         ".steals");
      }
      if (rep == 0 || wall.count() < best_wall) {
        best_wall = wall.count();
        best_steals = steals;
      }
      run_packets = result.total_packets;
      sched_units = result.scheduler_metrics.gauge_value("fleet.scheduler.units");
      sched_unit_size = result.scheduler_metrics.gauge_value("fleet.scheduler.unit_size");
      sched_peak_live =
          result.scheduler_metrics.gauge_value("fleet.scheduler.peak_live_units");
    }
    const double pps =
        best_wall > 0.0 ? static_cast<double>(run_packets) / best_wall : 0.0;
    if (workers == 1) single_worker_pps = pps;
    const double speedup = single_worker_pps > 0.0 ? pps / single_worker_pps : 0.0;
    last_speedup = speedup;
    total_packets = run_packets;

    if (!first) out << ",\n";
    first = false;
    out << "    {\"workers\": " << workers << ", \"wall_seconds\": " << best_wall
        << ", \"packets\": " << run_packets << ", \"packets_per_second\": " << pps
        << ", \"speedup\": " << speedup << ", \"steals\": " << best_steals
        << ", \"units\": " << sched_units << ", \"unit_size\": " << sched_unit_size
        << ", \"peak_live_units\": " << sched_peak_live << "}";
    std::cerr << "fleet scaling: " << workers << " worker(s) -> " << pps << " packets/s ("
              << speedup << "x, " << best_steals << " steals, best of " << reps << ")\n";
    wall_by_workers[point++] = best_wall;
  }

  // Price the scheduler timeline (FleetSchedule::trace) against the
  // untraced sweep point at the same worker count: the overhead fraction
  // is what bench_compare.py holds under the observability budget. The
  // traced run's artifacts - the Perfetto-openable worker timeline and
  // the critical-path report - are written next to the bench JSON, and
  // its merged metrics join the cross-worker byte-compare so tracing is
  // re-proven inert on every run.
  int traced_workers = worker_counts[0];
  double traced_wall_off = wall_by_workers[0];
  for (int i = 0; i < point; ++i) {
    if (worker_counts[i] <= std::max(1, available_cores)) {
      traced_workers = worker_counts[i];
      traced_wall_off = wall_by_workers[i];
    }
  }
  double traced_wall = 0.0;
  std::uint64_t timeline_events = 0;
  std::uint64_t timeline_dropped = 0;
  double max_component_error = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto config = core::FleetConfig::Scaled(servers, duration);
    config.threads = traced_workers;
    config.base_seed = kSeed;
    config.schedule.trace = true;
    const auto start = std::chrono::steady_clock::now();
    const auto result = core::RunFleet(config);
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    if (rep == 0 || wall.count() < traced_wall) traced_wall = wall.count();
    if (result.metrics.ToJson() != baseline_metrics) deterministic = false;
    timeline_events = result.sched_trace.size();
    timeline_dropped = result.sched_trace.dropped();
    for (const obs::SchedReport::Worker& w : result.sched_report.per_worker) {
      const double span = static_cast<double>(w.span_ns);
      const double sum = static_cast<double>(w.work_ns + w.steal_ns + w.stall_ns +
                                             w.merge_ns + w.idle_ns);
      if (span > 0.0) {
        max_component_error = std::max(max_component_error, std::abs(sum - span) / span);
      }
    }
    if (rep == 0) {
      std::ofstream timeline("FLEET_timeline.json");
      result.sched_trace.WriteJson(timeline);
      std::ofstream report("FLEET_sched_report.json");
      result.sched_report.WriteJson(report);
      std::cerr << (timeline && report
                        ? "wrote FLEET_timeline.json, FLEET_sched_report.json\n"
                        : "error: could not write fleet timeline artifacts\n");
    }
  }
  const double overhead = traced_wall_off > 0.0
                              ? std::max(0.0, (traced_wall - traced_wall_off) / traced_wall_off)
                              : 0.0;
  std::cerr << "fleet sched-trace: " << traced_workers << " worker(s), off " << traced_wall_off
            << " s vs on " << traced_wall << " s -> overhead " << overhead * 100.0 << "%\n";

  out << "\n  ],\n"
      << "  \"sched_trace\": {\"workers\": " << traced_workers
      << ", \"wall_seconds_off\": " << traced_wall_off
      << ", \"wall_seconds_on\": " << traced_wall
      << ", \"overhead_fraction\": " << overhead
      << ", \"timeline_events\": " << timeline_events
      << ", \"timeline_dropped\": " << timeline_dropped
      << ", \"max_component_error\": " << max_component_error
      << ", \"components_sum_ok\": " << (max_component_error <= 0.01 ? "true" : "false")
      << "},\n"
      << "  \"packets_per_run\": " << total_packets << ",\n"
      << "  \"max_workers\": 8,\n"
      << "  \"speedup_at_max_workers\": " << last_speedup << ",\n"
      << "  \"deterministic_across_workers\": " << (deterministic ? "true" : "false") << "\n}\n";
  if (!deterministic) {
    std::cerr << "ERROR: merged metrics differ across worker counts\n";
  }
  if (out) {
    std::cerr << "wrote " << path << "\n";
  } else {
    std::cerr << "error: could not write " << path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The JSON writers run real workloads; CI stages that only need one of
  // the two reports can skip the other.
  if (EnvInt("GAMETRACE_SKIP_FLEET", 0) == 0) WriteFleetScalingJson("BENCH_fleet.json");
  if (EnvInt("GAMETRACE_SKIP_HOTPATH", 0) == 0) WriteHotpathJson("BENCH_hotpath.json");
  return 0;
}
