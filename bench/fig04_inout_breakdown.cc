// Figure 4: per-minute incoming and outgoing bandwidth and packet load.
//
// Paper shape: incoming packet load exceeds outgoing, while outgoing
// bandwidth exceeds incoming (the server broadcasts bigger packets).
#include "common.h"

#include "net/units.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto run = bench::RunCharacterized(21600.0);
  bench::PrintScaleBanner("Figure 4 - in/out bandwidth and packet load", run.duration,
                          run.full);

  const auto& r = run.report;
  bench::PrintSeries(std::cout, r.minute_bytes_in.Rate().Scaled(8.0 / 1e3),
                    "(a) incoming bandwidth (kbps)", 200);
  bench::PrintSeries(std::cout, r.minute_bytes_out.Rate().Scaled(8.0 / 1e3),
                    "(b) outgoing bandwidth (kbps)", 200);
  bench::PrintSeries(std::cout, r.minute_packets_in.Rate(), "(c) incoming packet load (pps)",
                    200);
  bench::PrintSeries(std::cout, r.minute_packets_out.Rate(),
                    "(d) outgoing packet load (pps)", 200);

  const double in_bps = r.minute_bytes_in.Rate().Scaled(8.0).Mean();
  const double out_bps = r.minute_bytes_out.Rate().Scaled(8.0).Mean();
  const double in_pps = r.minute_packets_in.Rate().Mean();
  const double out_pps = r.minute_packets_out.Rate().Mean();
  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Incoming pps > outgoing pps", "yes (437 vs 361)",
                 core::FormatDouble(in_pps, 0) + " vs " + core::FormatDouble(out_pps, 0) +
                     (in_pps > out_pps ? " (yes)" : " (NO)"));
  bench::Compare("Outgoing bw > incoming bw", "yes (542 vs 341 kbps)",
                 core::FormatDouble(net::Kbps(out_bps), 0) + " vs " +
                     core::FormatDouble(net::Kbps(in_bps), 0) + " kbps" +
                     (out_bps > in_bps ? " (yes)" : " (NO)"));
  return 0;
}
