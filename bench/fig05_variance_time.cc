// Figure 5: variance-time plot of the total server packet load
// (aggregated-variance method, base interval m = 10 ms).
//
// Paper shape, three regions:
//   m < 50 ms        - slope steeper than -1 (H < 1/2): the 50 ms tick makes
//                      the process anti-persistent at sub-tick scales;
//   50 ms .. 30 min  - variance persists (H near 1): map-change dips;
//   m > 30 min       - slope -1 (H ~ 1/2): short-range dependence.
#include "common.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  // 24 h gives enough whole blocks past the 30-min boundary for a stable
  // large-scale fit.
  core::CharacterizationOptions options;
  options.vt_window = 86400.0;
  auto run = bench::RunCharacterized(86400.0, options);
  bench::PrintScaleBanner("Figure 5 - variance-time plot", run.duration, run.full);

  const auto& plot = run.report.variance_time;
  std::cout << "\n# variance-time points: log10(m) log10(normalized variance)"
            << "  [base m = " << plot.base_interval << " s]\n";
  for (const auto& p : plot.points) {
    std::cout << p.log10_m << ' ' << p.log10_normalized_variance << "   # m = "
              << p.interval_seconds << " s\n";
  }

  const auto& h = run.report.hurst;
  std::cout << "\nHurst estimates (H = 1 - |slope|/2):\n";
  std::cout << "  m < 50 ms       : H = " << core::FormatDouble(h.small_scale, 2) << "\n";
  std::cout << "  50 ms - 30 min  : H = " << core::FormatDouble(h.mid_scale, 2) << "\n";
  std::cout << "  m > 30 min      : H = " << core::FormatDouble(h.large_scale, 2) << "\n";

  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Small-scale region", "H < 1/2 (anti-persistent)",
                 "H = " + core::FormatDouble(h.small_scale, 2) +
                     (h.small_scale < 0.5 ? " (yes)" : " (NO)"));
  bench::Compare("Mid-scale region", "high variability (H near 1)",
                 "H = " + core::FormatDouble(h.mid_scale, 2) +
                     (h.mid_scale > 0.7 ? " (yes)" : " (NO)"));
  bench::Compare("Large-scale region", "H ~ 1/2 (short-range dependent)",
                 "H = " + core::FormatDouble(h.large_scale, 2));
  return 0;
}
