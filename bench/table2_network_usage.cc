// Table II: network usage information (wire bytes: headers included).
//
// Paper values (full week): 500 M packets (273.8 M in / 226.2 M out);
// 64.42 GB; 798.11 pkts/sec (437.12 in / 360.99 out); 883 kbps mean
// bandwidth (341 in / 542 out).
#include "common.h"

#include "net/units.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto run = bench::RunCharacterized(21600.0);
  bench::PrintScaleBanner("Table II - network usage information", run.duration, run.full);
  const auto& s = run.report.summary;

  core::TableReport table("TABLE II: NETWORK USAGE INFORMATION");
  table.AddCount("Total Packets", s.total_packets());
  table.AddCount("Total Packets In", s.packets_in());
  table.AddCount("Total Packets Out", s.packets_out());
  table.AddRow("Total Bytes", core::FormatGigabytes(s.wire_bytes_total()));
  table.AddRow("Total Bytes In", core::FormatGigabytes(s.wire_bytes_in()));
  table.AddRow("Total Bytes Out", core::FormatGigabytes(s.wire_bytes_out()));
  table.AddValue("Mean Packet Load", s.mean_packet_load(), "pkts/sec");
  table.AddValue("Mean Packet Load In", s.mean_packet_load_in(), "pkts/sec");
  table.AddValue("Mean Packet Load Out", s.mean_packet_load_out(), "pkts/sec");
  table.AddValue("Mean Bandwidth", net::Kbps(s.mean_bandwidth_bps()), "kbs", 0);
  table.AddValue("Mean Bandwidth In", net::Kbps(s.mean_bandwidth_in_bps()), "kbs", 0);
  table.AddValue("Mean Bandwidth Out", net::Kbps(s.mean_bandwidth_out_bps()), "kbs", 0);
  table.Print(std::cout);

  std::cout << "\nPaper-vs-measured (rates are scale-invariant):\n";
  bench::Compare("Mean packet load", "798.11 pps",
                 core::FormatDouble(s.mean_packet_load(), 2) + " pps");
  bench::Compare("Mean packet load in/out", "437.12 / 360.99 pps",
                 core::FormatDouble(s.mean_packet_load_in(), 2) + " / " +
                     core::FormatDouble(s.mean_packet_load_out(), 2) + " pps");
  bench::Compare("Mean bandwidth", "883 kbs (822 kbs from byte totals)",
                 core::FormatDouble(net::Kbps(s.mean_bandwidth_bps()), 0) + " kbs");
  bench::Compare("In packets > out packets", "yes",
                 s.packets_in() > s.packets_out() ? "yes" : "NO");
  bench::Compare("Out bytes > in bytes", "yes",
                 s.wire_bytes_out() > s.wire_bytes_in() ? "yes" : "NO");
  return 0;
}
