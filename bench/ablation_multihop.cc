// Ablation: provisioning several hops deep (paper section IV-A).
//
// "Even mid-range routers or firewalls within several hops of large hosted
// on-line game servers will need to be carefully provisioned to minimize
// both the loss and delay induced by routing extremely small packets."
//
// Drive the full game workload through chains of 1-4 identical mid-range
// devices and sweep their per-packet capacity: loss appears as soon as any
// hop's burst absorption is marginal, and the 50 ms burst pays queueing
// delay at *every* hop.
#include "common.h"

#include "router/topology.h"
#include "sim/simulator.h"

namespace {

struct Outcome {
  double loss_out = 0.0;
  double loss_in = 0.0;
  double mean_delay_ms = 0.0;
  double max_delay_ms = 0.0;
};

Outcome RunChain(int hops, double capacity_pps, std::size_t buffers, double duration) {
  using namespace gametrace;
  sim::Simulator simulator;
  router::DeviceChain::Config cfg;
  for (int i = 0; i < hops; ++i) {
    router::NatDevice::Config hop;
    hop.mean_capacity_pps = capacity_pps;
    hop.lan_buffer = buffers;
    hop.wan_buffer = buffers;
    hop.episode_mean_interval = 0.0;  // clean devices: queueing only
    hop.seed = 100 + static_cast<std::uint64_t>(i);
    cfg.hops.push_back(hop);
  }
  router::DeviceChain chain(simulator, cfg);
  auto game = game::GameConfig::ScaledDefaults(duration);
  game::CsServer server(simulator, game, chain.injector());
  chain.Start();
  server.Start();
  simulator.RunUntil(duration);

  Outcome out;
  out.loss_out = chain.end_to_end().loss_rate_out();
  out.loss_in = chain.end_to_end().loss_rate_in();
  out.mean_delay_ms = chain.end_to_end().delay_out.mean() * 1e3;
  out.max_delay_ms = chain.end_to_end().delay_out.max() * 1e3;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  const auto scale = core::ExperimentScale::FromEnv(120.0);
  bench::PrintScaleBanner("Ablation - loss/delay across multiple hops", scale.duration,
                          scale.full);

  std::cout << "\n  capacity  buffers  hops |  out loss   in loss   mean delay   max delay\n";
  for (const double capacity : {2000.0, 5000.0}) {
    for (const std::size_t buffers : {16u, 64u}) {
      for (const int hops : {1, 2, 4}) {
        const Outcome o = RunChain(hops, capacity, buffers, scale.duration);
        std::cout << "  " << core::FormatDouble(capacity, 0) << " pps   " << buffers
                  << (buffers < 100 ? "       " : "      ") << hops << "    |   "
                  << core::FormatDouble(o.loss_out * 100.0, 2) << "%     "
                  << core::FormatDouble(o.loss_in * 100.0, 2) << "%      "
                  << core::FormatDouble(o.mean_delay_ms, 2) << " ms     "
                  << core::FormatDouble(o.max_delay_ms, 1) << " ms\n";
      }
    }
  }

  std::cout <<
      "\nObserved mechanics: with shallow buffers the ~20-packet broadcast burst\n"
      "loses its tail at the FIRST marginal hop - which thereby shapes the\n"
      "burst, so identical downstream hops add little further loss - while\n"
      "queueing delay accumulates at EVERY hop regardless of buffering. Deep\n"
      "buffers trade the loss away for per-hop delay: exactly the paper's\n"
      "warning that \"adding buffers will add an unacceptable level of delay\"\n"
      "once several such devices sit within a few hops of the server.\n";
  return 0;
}
