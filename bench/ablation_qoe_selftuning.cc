// Ablation: the paper's self-tuning loss (section IV-A).
//
// "Observed loss rates self-tune themselves at the worst tolerable level
// of performance. Any further degradation ... will simply cause players to
// quit playing, reducing the load back to the tolerable level. ... we
// believe the worst tolerable loss rate for this game is not far from
// 1-2%."
//
// Setup: the busy server behind a purely capacity-limited device (no
// livelock) whose lookup rate sits *below* the offered packet rate, so
// loss is sustained and load-dependent. With QoE disabled the device stays
// saturated; with QoE enabled players quit until the residual loss rate
// lands in the tolerable band.
#include "common.h"

#include "router/device_stats.h"

namespace {

gametrace::core::NatExperimentResult RunVariant(bool qoe, double duration) {
  using namespace gametrace;
  auto cfg = core::NatExperimentConfig::Defaults();
  cfg.duration = duration;
  cfg.game.trace_duration = duration;
  cfg.game.maps.map_duration = duration + 60.0;
  cfg.device.mean_capacity_pps = 780.0;  // below the ~850 pps offered
  cfg.device.episode_mean_interval = 0.0;
  cfg.enable_qoe = qoe;
  return core::RunNatExperiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  const auto scale = core::ExperimentScale::FromEnv(1800.0);
  bench::PrintScaleBanner("Ablation - QoE self-tuning loss", scale.duration, scale.full);

  const auto without = RunVariant(false, scale.duration);
  const auto with = RunVariant(true, scale.duration);

  const auto report = [](const char* name, const core::NatExperimentResult& r) {
    std::cout << "  " << name << ":\n"
              << "    incoming loss     : "
              << core::FormatDouble(r.device.loss_rate_incoming() * 100.0, 2) << "%\n"
              << "    outgoing loss     : "
              << core::FormatDouble(r.device.loss_rate_outgoing() * 100.0, 2) << "%\n"
              << "    final players     : " << core::FormatDouble(r.players.values().back(), 0)
              << " (mean " << core::FormatDouble(r.players.Mean(), 1) << ")\n"
              << "    QoE quits         : " << r.qoe_quits << "\n";
  };
  std::cout << "\n";
  report("QoE disabled (players tolerate anything)", without);
  report("QoE enabled  (quit above ~1.2-3.5% loss)", with);

  std::cout << "\n# per-minute players, QoE enabled (watch the shedding):\n";
  bench::PrintSeries(std::cout, with.players, "players", 120);

  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Players shed load under loss", "yes",
                 with.qoe_quits > 0 && with.players.values().back() <
                                           without.players.values().back()
                     ? "yes"
                     : "NO");
  bench::Compare("Residual loss with QoE", "self-tunes toward the tolerable 1-2%",
                 core::FormatDouble(with.device.loss_rate_incoming() * 100.0, 2) + "% (vs " +
                     core::FormatDouble(without.device.loss_rate_incoming() * 100.0, 2) +
                     "% without)");
  return 0;
}
