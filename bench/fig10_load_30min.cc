// Figure 10: total packet load at m = 30 min.
//
// Paper shape: with the interval size at the map period, "the variability
// has been eliminated" - the series is flat around the long-term mean.
#include <cmath>

#include "common.h"

#include "game/config.h"
#include "trace/aggregator.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  // One simulated day gives 48 x 30-min bins (the paper shows 200 from the
  // full week; GAMETRACE_FULL reproduces all ~348).
  const auto scale = core::ExperimentScale::FromEnv(86400.0);
  const auto config = game::GameConfig::ScaledDefaults(scale.duration);
  trace::LoadAggregator agg(1.0);
  core::RunServerTrace(config, agg);
  agg.ExtendTo(scale.duration);
  bench::PrintScaleBanner("Figure 10 - total packet load at m = 30 min", scale.duration,
                          scale.full);

  const auto per_sec = agg.packets_total();
  const auto at30min = per_sec.Aggregate(1800).Rate();
  std::cout << "\n# Fig 10: total packet load, 30 min bins (interval#, pkts/sec)\n";
  for (std::size_t i = 0; i < at30min.size(); ++i) {
    std::cout << i << ' ' << at30min[i] << '\n';
  }

  const auto per_sec_rate = per_sec.Rate();
  const double cv_1s = per_sec_rate.Mean() > 0.0
                           ? std::sqrt(per_sec_rate.Variance()) / per_sec_rate.Mean()
                           : 0.0;
  const double cv_30m =
      at30min.Mean() > 0.0 ? std::sqrt(at30min.Variance()) / at30min.Mean() : 0.0;
  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Variability at 30 min bins", "eliminated",
                 "cv " + core::FormatDouble(cv_30m, 3) + " (vs " +
                     core::FormatDouble(cv_1s, 3) + " at 1 s bins)");
  return 0;
}
