// Figure 11: histogram of mean bandwidth across all sessions longer than
// 30 s.
//
// Paper shape: "the overwhelming majority of flows are pegged at modem
// rates or below"; a handful of high-rate ("l337") players reach
// ~100-150 kbps.
#include "common.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto run = bench::RunCharacterized(43200.0);
  bench::PrintScaleBanner("Figure 11 - client bandwidth histogram", run.duration, run.full);

  const auto& hist = run.report.session_bandwidth;
  core::PrintHistogram(std::cout, hist, "sessions per bandwidth bin (bits/sec)",
                       /*cdf=*/false, /*normalized=*/false);

  // Mass accounting against the 56 kbps modem barrier.
  const auto cdf = hist.Cdf();
  const auto barrier_bin = static_cast<std::size_t>(56000.0 / hist.bin_width());
  const double below = cdf[std::min(barrier_bin, hist.bin_count() - 1)];
  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Mode of the histogram", "at/below modem rates (40-56 kbps)",
                 core::FormatDouble(hist.bin_center(hist.ModeBin()) / 1e3, 1) + " kbps");
  bench::Compare("Sessions at/below 56 kbps", "overwhelming majority",
                 core::FormatDouble(below * 100.0, 1) + "%");
  bench::Compare("Tail beyond 56 kbps", "a handful of l337 players to ~150 kbps",
                 core::FormatDouble((1.0 - below) * 100.0, 1) + "% reaching up to " +
                     core::FormatDouble(hist.Quantile(0.999) / 1e3, 0) + " kbps");
  return 0;
}
