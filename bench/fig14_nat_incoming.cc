// Figure 14: per-second incoming packet load through the NAT device -
// (a) clients -> NAT, (b) NAT -> server.
//
// Paper shape: the offered load (a) is relatively stable; the delivered
// load (b) shows frequent drop-outs where the device stops forwarding.
#include <cmath>

#include "common.h"

#include "router/device_stats.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto config = core::NatExperimentConfig::Defaults();
  const auto scale = core::ExperimentScale::FromEnv(config.duration);
  if (scale.duration != config.duration && !scale.full) {
    config.duration = scale.duration;
    config.game.trace_duration = scale.duration;
    config.game.maps.map_duration = scale.duration + 60.0;
  }
  const auto result = core::RunNatExperiment(config);
  bench::PrintScaleBanner("Figure 14 - NAT incoming packet load", config.duration,
                          /*full=*/true);

  const auto& offered = result.device.load_series(router::Segment::kClientsToNat);
  const auto& delivered = result.device.load_series(router::Segment::kNatToServer);
  bench::PrintSeries(std::cout, offered, "(a) clients -> NAT (pkts/sec)", 600);
  bench::PrintSeries(std::cout, delivered, "(b) NAT -> server (pkts/sec)", 600);

  // Drop-out accounting: seconds where delivery fell far below offer.
  int dropouts = 0;
  for (std::size_t i = 0; i < delivered.size() && i < offered.size(); ++i) {
    if (offered[i] > 100.0 && delivered[i] < 0.6 * offered[i]) ++dropouts;
  }
  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Offered load stability (cv)", "relatively stable",
                 core::FormatDouble(std::sqrt(offered.Variance()) / offered.Mean(), 3));
  bench::Compare("NAT->server drop-outs", "frequent",
                 std::to_string(dropouts) + " seconds with >40% shortfall");
  return 0;
}
