// Figures 6 and 7: packet load at the m = 10 ms interval size (first 200
// intervals): total, incoming and outgoing.
//
// Paper shape: "extremely bursty, highly periodic" - the outgoing load
// spikes to ~1800-2500 pps every 5th bin (the 50 ms broadcast) and is near
// zero between; the incoming load is unsynchronised and much smoother.
#include "common.h"

#include "game/config.h"
#include "trace/aggregator.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  const auto scale = core::ExperimentScale::FromEnv(30.0);
  const auto config = game::GameConfig::ScaledDefaults(scale.duration);
  trace::LoadAggregator agg(0.010);
  core::RunServerTrace(config, agg);
  bench::PrintScaleBanner("Figures 6/7 - packet load at m = 10 ms", scale.duration,
                          scale.full);

  // The paper plots the first 200 intervals; skip the first second of
  // warm-up so the window is steady-state.
  const std::size_t begin = 100;
  const std::size_t end = begin + 200;
  const auto total = agg.packet_rate_total();
  const auto in = agg.packet_rate_in();
  const auto out = agg.packet_rate_out();

  const auto print_window = [&](const stats::TimeSeries& s, const char* name) {
    std::cout << "\n# " << name << " (interval#, pkts/sec)\n";
    for (std::size_t i = begin; i < end && i < s.size(); ++i) {
      std::cout << (i - begin) << ' ' << s[i] << '\n';
    }
  };
  print_window(total, "Fig 6: total packet load, 200 x 10 ms intervals");
  print_window(in, "Fig 7(a): incoming packet load");
  print_window(out, "Fig 7(b): outgoing packet load");

  // Quantify the burst pattern over a longer window.
  double on = 0.0;
  double off = 0.0;
  std::size_t on_n = 0;
  std::size_t off_n = 0;
  for (std::size_t i = begin; i < out.size() && i < 2000; ++i) {
    if (i % 5 == 0) {
      on += out[i];
      ++on_n;
    } else {
      off += out[i];
      ++off_n;
    }
  }
  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Outgoing burst bins (every 50 ms)", "~1800-2500 pps",
                 core::FormatDouble(on_n ? on / on_n : 0.0, 0) + " pps mean");
  bench::Compare("Outgoing between bursts", "~0 pps",
                 core::FormatDouble(off_n ? off / off_n : 0.0, 0) + " pps mean");
  bench::Compare("Incoming smoothness", "no strong 50 ms structure",
                 "mean " + core::FormatDouble(in.Mean(), 0) + " pps, max " +
                     core::FormatDouble(in.Max(), 0) + " pps");
  return 0;
}
