// Figure 15: per-second outgoing packet load through the NAT device -
// (a) server -> NAT, (b) NAT -> clients.
//
// Paper shape: both outgoing segments show drop-outs *directly correlated
// with lost incoming packets* - losing client updates freezes the game,
// which silences the broadcast.
#include "common.h"

#include "router/device_stats.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto config = core::NatExperimentConfig::Defaults();
  const auto scale = core::ExperimentScale::FromEnv(config.duration);
  if (scale.duration != config.duration && !scale.full) {
    config.duration = scale.duration;
    config.game.trace_duration = scale.duration;
    config.game.maps.map_duration = scale.duration + 60.0;
  }
  const auto result = core::RunNatExperiment(config);
  bench::PrintScaleBanner("Figure 15 - NAT outgoing packet load", config.duration,
                          /*full=*/true);

  const auto& offered = result.device.load_series(router::Segment::kServerToNat);
  const auto& delivered = result.device.load_series(router::Segment::kNatToClients);
  const auto& inbound_delivered = result.device.load_series(router::Segment::kNatToServer);
  bench::PrintSeries(std::cout, offered, "(a) server -> NAT (pkts/sec)", 600);
  bench::PrintSeries(std::cout, delivered, "(b) NAT -> clients (pkts/sec)", 600);

  // Correlation of outgoing drop-outs with incoming loss windows: count
  // outgoing quiet seconds, and how many coincide with inbound shortfall.
  int out_dropouts = 0;
  int correlated = 0;
  const double out_mean = offered.Mean();
  const double in_mean = inbound_delivered.Mean();
  for (std::size_t i = 1; i + 1 < offered.size(); ++i) {
    if (offered[i] < 0.6 * out_mean) {
      ++out_dropouts;
      const bool inbound_low = inbound_delivered[i] < 0.9 * in_mean ||
                               inbound_delivered[i - 1] < 0.9 * in_mean;
      if (inbound_low) ++correlated;
    }
  }
  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Server->NAT drop-outs", "present (game freezes)",
                 std::to_string(out_dropouts) + " quiet seconds");
  bench::Compare("Correlated with incoming loss", "directly correlated",
                 out_dropouts > 0
                     ? core::FormatDouble(100.0 * correlated / out_dropouts, 0) + "%"
                     : "n/a");
  bench::Compare("Server freezes (ground truth)", "-",
                 std::to_string(result.server_freezes));
  return 0;
}
