// Figure 1: per-minute total bandwidth of the server.
//
// Paper shape: hovers around 800-900 kbps for the whole week with heavy
// short-term variation; dips at map changes and the three outages.
#include "common.h"

#include "net/units.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto run = bench::RunCharacterized(21600.0);
  bench::PrintScaleBanner("Figure 1 - per-minute bandwidth", run.duration, run.full);

  const auto bw_kbps = run.report.minute_bytes_in.Plus(run.report.minute_bytes_out)
                           .Rate()
                           .Scaled(8.0 / 1e3);
  bench::PrintSeries(std::cout, bw_kbps, "total bandwidth (kbps) per minute", 400);

  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Long-term level", "~800-900 kbps",
                 core::FormatDouble(bw_kbps.Mean(), 0) + " kbps mean");
  bench::Compare("Short-term variation", "large",
                 "min " + core::FormatDouble(bw_kbps.Min(), 0) + " / max " +
                     core::FormatDouble(bw_kbps.Max(), 0) + " kbps");
  return 0;
}
