// Figure 12: probability density functions of application packet sizes -
// (a) all packets, (b) inbound vs outbound.
//
// Paper shape: almost all packets under 200 B (plot truncated at 500 B);
// inbound is an extremely narrow peak at ~40 B, outbound a wide spread
// around a much larger mean.
#include "common.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto run = bench::RunCharacterized(7200.0);
  bench::PrintScaleBanner("Figure 12 - packet size PDFs", run.duration, run.full);

  core::PrintHistogram(std::cout, run.report.size_total, "(a) all packets: PDF (1 B bins)");
  core::PrintHistogram(std::cout, run.report.size_in, "(b) inbound: PDF");
  core::PrintHistogram(std::cout, run.report.size_out, "(b) outbound: PDF");

  const auto& in = run.report.size_in;
  const auto& out = run.report.size_out;
  const auto in_pdf = in.Pdf();
  const auto total_cdf = run.report.size_total.Cdf();
  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Inbound peak location", "~40 B",
                 core::FormatDouble(in.bin_center(in.ModeBin()), 0) + " B");
  bench::Compare("Inbound peak height", "~0.09", core::FormatDouble(in_pdf[in.ModeBin()], 3));
  bench::Compare("Outbound mean", "129.51 B", core::FormatDouble(out.ApproxMean(), 1) + " B");
  bench::Compare("Packets under 200 B", "almost all",
                 core::FormatDouble(total_cdf[199] * 100.0, 1) + "%");
  bench::Compare("Packets beyond 500 B", "negligible",
                 core::FormatCount(run.report.size_total.overflow()));
  return 0;
}
