// Figure 2: per-minute total packet load of the server.
//
// Paper shape: ~700-800 pps long-term with heavy short-term variation.
#include "common.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto run = bench::RunCharacterized(21600.0);
  bench::PrintScaleBanner("Figure 2 - per-minute packet load", run.duration, run.full);

  const auto pps =
      run.report.minute_packets_in.Plus(run.report.minute_packets_out).Rate();
  bench::PrintSeries(std::cout, pps, "total packet load (pkts/sec) per minute", 400);

  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Long-term level", "~700-800 pps",
                 core::FormatDouble(pps.Mean(), 0) + " pps mean");
  bench::Compare("Peak", "~1000-1200 pps", core::FormatDouble(pps.Max(), 0) + " pps");
  return 0;
}
