// Table I: general trace information.
//
// Paper values (full week): 626,477 s; 339 maps; 16,030 established
// connections (5,886 unique); 24,004 attempted (8,207 unique).
#include "common.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto run = bench::RunCharacterized(86400.0);
  bench::PrintScaleBanner("Table I - general trace information", run.duration, run.full);

  core::TableReport table("TABLE I: GENERAL TRACE INFORMATION");
  table.AddRow("Total Time of Trace", core::FormatDuration(run.duration));
  table.AddRow("Maps Played", std::to_string(run.stats.maps_played));
  table.AddCount("Established Connections", run.stats.established);
  table.AddCount("Unique Clients Establishing", run.stats.unique_establishing);
  table.AddCount("Attempted Connections", run.stats.attempts);
  table.AddCount("Unique Clients Attempting", run.stats.unique_attempting);
  table.AddCount("Refused Connections", run.stats.refused);
  table.Print(std::cout);

  // The same numbers recovered from the packet stream alone (the paper's
  // vantage): handshake packets and timeout-based session reconstruction.
  const auto& s = run.report.summary;
  core::TableReport derived("Derived from the packet trace (no server log)");
  derived.AddCount("Established (accept handshakes)", s.established_connections());
  derived.AddCount("Attempted (request handshakes)", s.attempted_connections());
  derived.AddCount("Sessions (timeout reconstruction)", run.report.sessions.size());
  derived.AddCount("Unique clients attempting", s.unique_clients_attempting());
  derived.Print(std::cout);

  const double week_factor = 626477.0 / run.duration;
  std::cout << "\nPaper-vs-measured (measured extrapolated x" << core::FormatDouble(week_factor, 1)
            << " to the week where totals apply):\n";
  bench::Compare("Maps played", "339",
                 core::FormatDouble(run.stats.maps_played * week_factor, 0));
  bench::Compare("Established connections", "16,030",
                 core::FormatCount(static_cast<std::uint64_t>(
                     static_cast<double>(run.stats.established) * week_factor)));
  bench::Compare("Attempted connections", "24,004",
                 core::FormatCount(static_cast<std::uint64_t>(
                     static_cast<double>(run.stats.attempts) * week_factor)));
  bench::Compare("Refused connections", "~7,974",
                 core::FormatCount(static_cast<std::uint64_t>(
                     static_cast<double>(run.stats.refused) * week_factor)));
  return 0;
}
