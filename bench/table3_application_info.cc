// Table III: application payload information (headers excluded).
//
// Paper values (full week): 37.41 GB (10.13 in / 27.28 out); mean packet
// size 80.33 B (39.72 in / 129.51 out).
#include "common.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  auto run = bench::RunCharacterized(21600.0);
  bench::PrintScaleBanner("Table III - application information", run.duration, run.full);
  const auto& s = run.report.summary;

  core::TableReport table("TABLE III: APPLICATION INFORMATION");
  table.AddRow("Total Bytes", core::FormatGigabytes(s.app_bytes_total()));
  table.AddRow("Total Bytes In", core::FormatGigabytes(s.app_bytes_in()));
  table.AddRow("Total Bytes Out", core::FormatGigabytes(s.app_bytes_out()));
  table.AddValue("Mean Packet Size", s.mean_packet_size(), "bytes");
  table.AddValue("Mean Packet Size In", s.mean_packet_size_in(), "bytes");
  table.AddValue("Mean Packet Size Out", s.mean_packet_size_out(), "bytes");
  table.Print(std::cout);

  std::cout << "\nPaper-vs-measured (sizes are scale-invariant):\n";
  bench::Compare("Mean packet size", "80.33 B",
                 core::FormatDouble(s.mean_packet_size(), 2) + " B");
  bench::Compare("Mean packet size in", "39.72 B",
                 core::FormatDouble(s.mean_packet_size_in(), 2) + " B");
  bench::Compare("Mean packet size out", "129.51 B",
                 core::FormatDouble(s.mean_packet_size_out(), 2) + " B");
  bench::Compare("Out mean > 3x in mean", "yes",
                 s.mean_packet_size_out() > 3.0 * s.mean_packet_size_in() ? "yes" : "NO");
  return 0;
}
