// Ablation: aggregate self-similarity follows the user population
// (paper sections III-A and IV-B).
//
// The paper warns that its single-server predictability does "not directly
// apply to overall aggregate load behavior of the entire collection of
// Counter-Strike servers": since per-server traffic is linear in players,
// aggregate scaling is inherited from the population process. Sixteen
// servers with heavy-tailed (Pareto) ON/OFF interest keep variance across
// coarse time scales (H >> 1/2); pinned populations do not.
#include "common.h"

#include "core/aggregate.h"
#include "core/fleet.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  const auto scale = core::ExperimentScale::FromEnv(57600.0);
  bench::PrintScaleBanner("Ablation - population-driven aggregate self-similarity",
                          scale.duration, scale.full);

  core::PopulationConfig cfg;
  cfg.duration = scale.duration;
  cfg.threads = 0;  // fan the 16 servers across all cores; result is bit-identical
  std::cout << "  workers: " << core::ResolveWorkerCount(cfg.servers, cfg.threads) << " threads over "
            << cfg.servers << " servers\n";

  cfg.modulate_interest = true;
  const auto heavy = core::SimulateAggregatePopulation(cfg);
  cfg.modulate_interest = false;
  const auto fixed = core::SimulateAggregatePopulation(cfg);

  std::cout << "\n  population process          mean players   coarse-scale H (>2x session)\n";
  std::cout << "  fixed interest              " << core::FormatDouble(fixed.total_players.Mean(), 1)
            << "          " << core::FormatDouble(fixed.coarse_hurst, 2) << "\n";
  std::cout << "  Pareto ON/OFF (alpha=1.4)   " << core::FormatDouble(heavy.total_players.Mean(), 1)
            << "          " << core::FormatDouble(heavy.coarse_hurst, 2) << "\n";

  std::cout << "\n# aggregate load (pps), heavy-tailed populations, 1-min bins:\n";
  bench::PrintSeries(std::cout, heavy.total_load_pps.AggregateMean(60), "pps", 200);

  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Fixed population aggregate", "no fractal behaviour (H ~ 1/2)",
                 "H = " + core::FormatDouble(fixed.coarse_hurst, 2));
  bench::Compare("Self-similar population aggregate", "high degree of self-similarity",
                 "H = " + core::FormatDouble(heavy.coarse_hurst, 2));
  return 0;
}
