// Figure 9: total packet load at m = 1 s for the first 18,000 intervals.
//
// Paper shape: noticeable dips every 1800 intervals - the 30-minute map
// changes, during which the server goes quiet for seconds.
#include "common.h"

#include "game/config.h"
#include "trace/aggregator.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  const auto scale = core::ExperimentScale::FromEnv(18000.0);
  const auto config = game::GameConfig::ScaledDefaults(scale.duration);
  trace::LoadAggregator agg(1.0);
  core::RunServerTrace(config, agg);
  agg.ExtendTo(scale.duration);
  bench::PrintScaleBanner("Figure 9 - total packet load at m = 1 s", scale.duration,
                          scale.full);

  const auto rate = agg.packet_rate_total();
  bench::PrintSeries(std::cout, rate, "total packet load (pkts/sec), 1 s bins", 600);

  // Find the dips: seconds with near-zero load well inside the trace.
  std::cout << "\n# map-change dips (1 s bins with < 50 pps):\n";
  int dips = 0;
  double last_dip = -100.0;
  int dip_events = 0;
  for (std::size_t i = 30; i + 30 < rate.size(); ++i) {
    if (rate[i] < 50.0) {
      ++dips;
      if (rate.bin_time(i) - last_dip > 120.0) ++dip_events;
      last_dip = rate.bin_time(i);
    }
  }
  std::cout << "#   " << dips << " quiet seconds in " << dip_events << " dip events\n";

  const int expected_changes = static_cast<int>(scale.duration / 1860.0);
  std::cout << "\nPaper-vs-measured:\n";
  bench::Compare("Dips every ~1800 s", "one per 30-min map change",
                 std::to_string(dip_events) + " dip events vs ~" +
                     std::to_string(expected_changes) + " map changes expected");
  return 0;
}
