// Ablation (DESIGN.md section 5, claims 1-2): where does the paper's
// variance-time shape come from?
//
//  - Desynchronising the broadcast (spreading each client's update across
//    the tick) must destroy the sub-50 ms anti-persistence (H_small rises
//    toward 1/2) and the Figure 6 spike pattern.
//  - Disabling map rotation must flatten the 50 ms - 30 min region
//    (H_mid falls toward 1/2).
#include "common.h"

#include "stats/autocorrelation.h"
#include "trace/aggregator.h"

namespace {

struct Variant {
  const char* name;
  double spread;
  bool rotate_maps;
};

struct Outcome {
  double h_small;
  double h_mid;
  double burst_ratio;  // mean outgoing load in on-tick bins / off-tick bins
};

Outcome RunVariant(const Variant& variant, double duration) {
  using namespace gametrace;
  auto cfg = game::GameConfig::ScaledDefaults(duration);
  cfg.broadcast_spread = variant.spread;
  if (!variant.rotate_maps) cfg.maps.map_duration = duration + 120.0;

  core::CharacterizationOptions options;
  options.vt_window = duration;
  core::Characterizer characterizer(options);
  trace::LoadAggregator fine(0.010);
  trace::TeeSink tee;
  tee.Attach(characterizer);
  tee.Attach(fine);
  core::RunServerTrace(cfg, tee);
  const auto report = characterizer.Finish(duration);

  Outcome out{};
  out.h_small = report.hurst.small_scale;
  out.h_mid = report.hurst.mid_scale;
  const auto& series = fine.packets_out();
  double on = 0.0;
  double off = 0.0;
  std::size_t on_n = 0;
  std::size_t off_n = 0;
  for (std::size_t i = 100; i < series.size() && i < 100000; ++i) {
    if (i % 5 == 0) {
      on += series[i];
      ++on_n;
    } else {
      off += series[i];
      ++off_n;
    }
  }
  out.burst_ratio = (off > 0.0 && on_n > 0) ? (on / on_n) / (off / off_n) : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gametrace;
  gametrace::bench::ObsSession obs_session(argc, argv);
  const auto scale = core::ExperimentScale::FromEnv(7200.0);
  bench::PrintScaleBanner("Ablation - broadcast synchrony and map rotation", scale.duration,
                          scale.full);

  const Variant variants[] = {
      {"baseline (synchronous, 30-min maps)", 0.0, true},
      {"desynchronised broadcast", 1.0, true},
      {"no map rotation", 0.0, false},
  };

  std::cout << "\n  variant                               H(<50ms)  H(50ms-30min)  on/off burst ratio\n";
  for (const auto& variant : variants) {
    const Outcome out = RunVariant(variant, scale.duration);
    std::cout << "  " << variant.name;
    for (std::size_t pad = std::string(variant.name).size(); pad < 38; ++pad) std::cout << ' ';
    std::cout << core::FormatDouble(out.h_small, 2) << "      " << core::FormatDouble(out.h_mid, 2)
              << "           " << core::FormatDouble(out.burst_ratio, 1) << "\n";
  }

  std::cout <<
      "\nExpected: the baseline shows H(<50ms) << 1/2 and a large burst ratio;\n"
      "desynchronising raises H(<50ms) toward 1/2 and collapses the ratio to ~1;\n"
      "removing map rotation pulls H(50ms-30min) down toward 1/2.\n";
  return 0;
}
